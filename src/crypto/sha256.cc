#include "crypto/sha256.hh"

#include <cstring>

#include "crypto/stats.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace veil::crypto {

namespace {

const uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t
rotr(uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

inline uint32_t
loadBe32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return __builtin_bswap32(v);
}

// Word-oriented scalar compression: big-endian word loads, in-place
// 16-word circular message schedule, rounds unrolled 8 at a time via
// register renaming instead of the 8-way shift chain.
#define VEIL_SHA_S0(x) (rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22))
#define VEIL_SHA_S1(x) (rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25))
#define VEIL_SHA_G0(x) (rotr(x, 7) ^ rotr(x, 18) ^ ((x) >> 3))
#define VEIL_SHA_G1(x) (rotr(x, 17) ^ rotr(x, 19) ^ ((x) >> 10))
#define VEIL_SHA_RND(a, b, c, d, e, f, g, h, kw)                             \
    do {                                                                     \
        uint32_t t1 = (h) + VEIL_SHA_S1(e) + (((e) & (f)) ^ (~(e) & (g))) +  \
                      (kw);                                                  \
        uint32_t t2 = VEIL_SHA_S0(a) +                                       \
                      (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));             \
        (d) += t1;                                                           \
        (h) = t1 + t2;                                                       \
    } while (0)

void
compressScalar(uint32_t state[8], const uint8_t *p, size_t nblocks)
{
    uint32_t s0 = state[0], s1 = state[1], s2 = state[2], s3 = state[3];
    uint32_t s4 = state[4], s5 = state[5], s6 = state[6], s7 = state[7];
    while (nblocks-- > 0) {
        uint32_t w[16];
        for (int i = 0; i < 16; ++i)
            w[i] = loadBe32(p + 4 * i);

        uint32_t a = s0, b = s1, c = s2, d = s3;
        uint32_t e = s4, f = s5, g = s6, h = s7;

        for (int i = 0; i < 64; i += 8) {
            if (i >= 16) {
                for (int j = 0; j < 8; ++j) {
                    int idx = (i + j) & 15;
                    w[idx] = w[idx] + VEIL_SHA_G0(w[(idx + 1) & 15]) +
                             w[(idx + 9) & 15] +
                             VEIL_SHA_G1(w[(idx + 14) & 15]);
                }
            }
            VEIL_SHA_RND(a, b, c, d, e, f, g, h, kK[i + 0] + w[(i + 0) & 15]);
            VEIL_SHA_RND(h, a, b, c, d, e, f, g, kK[i + 1] + w[(i + 1) & 15]);
            VEIL_SHA_RND(g, h, a, b, c, d, e, f, kK[i + 2] + w[(i + 2) & 15]);
            VEIL_SHA_RND(f, g, h, a, b, c, d, e, kK[i + 3] + w[(i + 3) & 15]);
            VEIL_SHA_RND(e, f, g, h, a, b, c, d, kK[i + 4] + w[(i + 4) & 15]);
            VEIL_SHA_RND(d, e, f, g, h, a, b, c, kK[i + 5] + w[(i + 5) & 15]);
            VEIL_SHA_RND(c, d, e, f, g, h, a, b, kK[i + 6] + w[(i + 6) & 15]);
            VEIL_SHA_RND(b, c, d, e, f, g, h, a, kK[i + 7] + w[(i + 7) & 15]);
        }

        s0 += a;
        s1 += b;
        s2 += c;
        s3 += d;
        s4 += e;
        s5 += f;
        s6 += g;
        s7 += h;
        p += 64;
    }
    state[0] = s0;
    state[1] = s1;
    state[2] = s2;
    state[3] = s3;
    state[4] = s4;
    state[5] = s5;
    state[6] = s6;
    state[7] = s7;
}

#undef VEIL_SHA_S0
#undef VEIL_SHA_S1
#undef VEIL_SHA_G0
#undef VEIL_SHA_G1
#undef VEIL_SHA_RND

#if defined(__x86_64__)

// SHA-NI compression (the canonical ABEF/CDGH two-lane form). Indexing
// per 4-round group g with i = g & 3: schedule extension msg2 feeds
// m[i+1] for groups 3..14, msg1 feeds m[i+3] for groups 1..12.
__attribute__((target("sha,sse4.1,ssse3"))) void
compressShaNi(uint32_t state[8], const uint8_t *p, size_t nblocks)
{
    const __m128i mask =
        _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i *>(&state[0]));
    __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i *>(&state[4]));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);       // CDAB
    st1 = _mm_shuffle_epi32(st1, 0x1B);       // EFGH
    __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);    // ABEF
    st1 = _mm_blend_epi16(st1, tmp, 0xF0);         // CDGH

    while (nblocks-- > 0) {
        const __m128i save0 = st0;
        const __m128i save1 = st1;
        __m128i m[4];

        for (int g = 0; g < 16; ++g) {
            const int i = g & 3;
            if (g < 4) {
                m[i] = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(p + 16 * g));
                m[i] = _mm_shuffle_epi8(m[i], mask);
            }
            __m128i msg = _mm_add_epi32(
                m[i],
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(&kK[4 * g])));
            st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
            if (g >= 3 && g <= 14) {
                __m128i t = _mm_alignr_epi8(m[i], m[(i + 3) & 3], 4);
                m[(i + 1) & 3] = _mm_add_epi32(m[(i + 1) & 3], t);
                m[(i + 1) & 3] = _mm_sha256msg2_epu32(m[(i + 1) & 3], m[i]);
            }
            msg = _mm_shuffle_epi32(msg, 0x0E);
            st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
            if (g >= 1 && g <= 12)
                m[(i + 3) & 3] = _mm_sha256msg1_epu32(m[(i + 3) & 3], m[i]);
        }

        st0 = _mm_add_epi32(st0, save0);
        st1 = _mm_add_epi32(st1, save1);
        p += 64;
    }

    tmp = _mm_shuffle_epi32(st0, 0x1B);       // FEBA
    st1 = _mm_shuffle_epi32(st1, 0xB1);       // DCHG
    st0 = _mm_blend_epi16(tmp, st1, 0xF0);    // DCBA
    st1 = _mm_alignr_epi8(st1, tmp, 8);       // HGFE

    _mm_storeu_si128(reinterpret_cast<__m128i *>(&state[0]), st0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(&state[4]), st1);
}

bool
shaNiAvailable()
{
    static const bool avail = __builtin_cpu_supports("sha") &&
                              __builtin_cpu_supports("sse4.1") &&
                              __builtin_cpu_supports("ssse3");
    return avail;
}

#else

bool
shaNiAvailable()
{
    return false;
}

#endif // __x86_64__

} // namespace

Sha256::Sha256(Impl impl) : totalLen_(0), bufLen_(0), impl_(impl)
{
    h_[0] = 0x6a09e667;
    h_[1] = 0xbb67ae85;
    h_[2] = 0x3c6ef372;
    h_[3] = 0xa54ff53a;
    h_[4] = 0x510e527f;
    h_[5] = 0x9b05688c;
    h_[6] = 0x1f83d9ab;
    h_[7] = 0x5be0cd19;
}

void
Sha256::compressBlocks(const uint8_t *p, size_t nblocks)
{
    noteSha256Blocks(nblocks);
#if defined(__x86_64__)
    if (impl_ == Impl::Auto && shaNiAvailable()) {
        compressShaNi(h_, p, nblocks);
        return;
    }
#endif
    compressScalar(h_, p, nblocks);
}

void
Sha256::update(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    totalLen_ += len;
    if (bufLen_ > 0) {
        size_t take = std::min(len, sizeof(buf_) - bufLen_);
        std::memcpy(buf_ + bufLen_, p, take);
        bufLen_ += take;
        p += take;
        len -= take;
        if (bufLen_ == 64) {
            compressBlocks(buf_, 1);
            bufLen_ = 0;
        }
    }
    if (len >= 64) {
        size_t nblocks = len / 64;
        compressBlocks(p, nblocks);
        p += nblocks * 64;
        len -= nblocks * 64;
    }
    if (len > 0) {
        std::memcpy(buf_, p, len);
        bufLen_ = len;
    }
}

Digest
Sha256::finish()
{
    // Build the padded tail (1-2 blocks) in one buffer and compress it
    // with a single call instead of feeding padding byte by byte.
    uint8_t tail[128];
    size_t n = bufLen_;
    std::memcpy(tail, buf_, n);
    tail[n++] = 0x80;
    size_t total = (n <= 56) ? 64 : 128;
    std::memset(tail + n, 0, total - 8 - n);
    uint64_t bit_len = totalLen_ * 8;
    for (int i = 0; i < 8; ++i)
        tail[total - 8 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    compressBlocks(tail, total / 64);
    bufLen_ = 0;

    Digest out;
    for (int i = 0; i < 8; ++i) {
        out[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
        out[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
        out[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
        out[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
    }
    return out;
}

Digest
Sha256::hash(const void *data, size_t len)
{
    Sha256 ctx;
    ctx.update(data, len);
    return ctx.finish();
}

Digest
Sha256::hash(const Bytes &data)
{
    return hash(data.data(), data.size());
}

std::string
digestHex(const Digest &d)
{
    return hexEncode(d.data(), d.size());
}

} // namespace veil::crypto
