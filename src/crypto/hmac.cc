#include "crypto/hmac.hh"

#include <cstring>

#include "crypto/stats.hh"

namespace veil::crypto {

HmacKey::HmacKey() : HmacKey(nullptr, 0) {}

HmacKey::HmacKey(const void *key, size_t key_len)
{
    noteHmacKeyInit();

    uint8_t k[64];
    std::memset(k, 0, sizeof(k));
    if (key_len > 64) {
        Digest d = Sha256::hash(key, key_len);
        std::memcpy(k, d.data(), d.size());
    } else if (key_len > 0) {
        std::memcpy(k, key, key_len);
    }

    uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
        opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
    }
    inner_.update(ipad, sizeof(ipad));
    outer_.update(opad, sizeof(opad));
}

Digest
HmacKey::mac(const void *msg, size_t len) const
{
    HmacSha256 ctx(*this);
    ctx.update(msg, len);
    return ctx.finish();
}

HmacSha256::HmacSha256(const void *key, size_t key_len)
    : HmacSha256(HmacKey(key, key_len))
{
}

Digest
HmacSha256::finish()
{
    Digest inner = inner_.finish();
    outer_.update(inner.data(), inner.size());
    return outer_.finish();
}

Digest
HmacSha256::mac(const Bytes &key, const Bytes &msg)
{
    return mac(key, msg.data(), msg.size());
}

Digest
HmacSha256::mac(const Bytes &key, const void *msg, size_t len)
{
    HmacSha256 ctx(key);
    ctx.update(msg, len);
    return ctx.finish();
}

} // namespace veil::crypto
