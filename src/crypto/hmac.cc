#include "crypto/hmac.hh"

#include <cstring>

namespace veil::crypto {

HmacSha256::HmacSha256(const void *key, size_t key_len)
{
    uint8_t k[64];
    std::memset(k, 0, sizeof(k));
    if (key_len > 64) {
        Digest d = Sha256::hash(key, key_len);
        std::memcpy(k, d.data(), d.size());
    } else {
        std::memcpy(k, key, key_len);
    }

    uint8_t ipad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
        opad_[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
    }
    inner_.update(ipad, sizeof(ipad));
}

Digest
HmacSha256::finish()
{
    Digest inner = inner_.finish();
    Sha256 outer;
    outer.update(opad_, sizeof(opad_));
    outer.update(inner.data(), inner.size());
    return outer.finish();
}

Digest
HmacSha256::mac(const Bytes &key, const Bytes &msg)
{
    return mac(key, msg.data(), msg.size());
}

Digest
HmacSha256::mac(const Bytes &key, const void *msg, size_t len)
{
    HmacSha256 ctx(key);
    ctx.update(msg, len);
    return ctx.finish();
}

} // namespace veil::crypto
