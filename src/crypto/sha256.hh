/**
 * @file
 * SHA-256 (FIPS 180-4). Used for CVM launch measurement, enclave
 * measurement, module digests, and paging integrity hashes — the same
 * roles SHA-256 plays in the paper (§5.1, §6.2).
 */
#ifndef VEIL_CRYPTO_SHA256_HH_
#define VEIL_CRYPTO_SHA256_HH_

#include <array>
#include <cstdint>
#include <string>

#include "base/bytes.hh"

namespace veil::crypto {

/** A 256-bit digest. */
using Digest = std::array<uint8_t, 32>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const void *data, size_t len);
    void update(const Bytes &data) { update(data.data(), data.size()); }
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finalize and return the digest. The context must not be reused. */
    Digest finish();

    /** One-shot convenience. */
    static Digest hash(const void *data, size_t len);
    static Digest hash(const Bytes &data);

  private:
    void compress(const uint8_t block[64]);

    uint32_t h_[8];
    uint64_t totalLen_;
    uint8_t buf_[64];
    size_t bufLen_;
};

/** Hex string of a digest (for reports and logs). */
std::string digestHex(const Digest &d);

} // namespace veil::crypto

#endif // VEIL_CRYPTO_SHA256_HH_
