/**
 * @file
 * SHA-256 (FIPS 180-4). Used for CVM launch measurement, enclave
 * measurement, module digests, and paging integrity hashes — the same
 * roles SHA-256 plays in the paper (§5.1, §6.2).
 *
 * The context is trivially copyable: copying a partially-updated
 * Sha256 clones its midstate, which is how HmacSha256 resumes from
 * precomputed ipad/opad midstates without rehashing the key block.
 * Bulk input is compressed straight from the caller's buffer (no
 * staging through the 64-byte block buffer), word-at-a-time, with a
 * SHA-NI fast path when the host CPU has one. All of this is host-side
 * speed only; simulated cycle costs are charged by callers through the
 * cost model (DESIGN.md §7).
 */
#ifndef VEIL_CRYPTO_SHA256_HH_
#define VEIL_CRYPTO_SHA256_HH_

#include <array>
#include <cstdint>
#include <string>

#include "base/bytes.hh"

namespace veil::crypto {

/** A 256-bit digest. */
using Digest = std::array<uint8_t, 32>;

/** Incremental SHA-256 context; copy it to clone a midstate. */
class Sha256
{
  public:
    /**
     * Implementation selector. Auto picks the fastest host path
     * (SHA-NI where available); Portable forces the scalar word
     * implementation so tests can cross-check the two.
     */
    enum class Impl : uint8_t { Auto, Portable };

    explicit Sha256(Impl impl = Impl::Auto);

    /** Absorb @p len bytes. */
    void update(const void *data, size_t len);
    void update(const Bytes &data) { update(data.data(), data.size()); }
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finalize and return the digest. The context must not be reused. */
    Digest finish();

    /** One-shot convenience. */
    static Digest hash(const void *data, size_t len);
    static Digest hash(const Bytes &data);

  private:
    void compressBlocks(const uint8_t *p, size_t nblocks);

    uint32_t h_[8];
    uint64_t totalLen_;
    uint8_t buf_[64];
    size_t bufLen_;
    Impl impl_;
};

/** Hex string of a digest (for reports and logs). */
std::string digestHex(const Digest &d);

} // namespace veil::crypto

#endif // VEIL_CRYPTO_SHA256_HH_
