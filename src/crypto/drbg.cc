#include "crypto/drbg.hh"

namespace veil::crypto {

HmacDrbg::HmacDrbg(const Bytes &seed_material)
{
    k_.fill(0x00);
    v_.fill(0x01);
    key_ = HmacKey(k_.data(), k_.size());
    update(seed_material);
}

void
HmacDrbg::setKey(const Digest &k)
{
    std::copy(k.begin(), k.end(), k_.begin());
    key_ = HmacKey(k_.data(), k_.size());
}

void
HmacDrbg::update(const Bytes &provided)
{
    // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
    {
        HmacSha256 h(key_);
        h.update(v_.data(), v_.size());
        uint8_t zero = 0x00;
        h.update(&zero, 1);
        h.update(provided);
        setKey(h.finish());
    }
    {
        HmacSha256 h(key_);
        h.update(v_.data(), v_.size());
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), v_.begin());
    }
    if (provided.empty())
        return;
    {
        HmacSha256 h(key_);
        h.update(v_.data(), v_.size());
        uint8_t one = 0x01;
        h.update(&one, 1);
        h.update(provided);
        setKey(h.finish());
    }
    {
        HmacSha256 h(key_);
        h.update(v_.data(), v_.size());
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), v_.begin());
    }
}

Bytes
HmacDrbg::generate(size_t len)
{
    Bytes out;
    out.reserve(len);
    while (out.size() < len) {
        // V = HMAC(K, V), reusing the cached key midstates: the generate
        // loop touches no key-derivation code.
        HmacSha256 h(key_);
        h.update(v_.data(), v_.size());
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), v_.begin());
        size_t take = std::min(d.size(), len - out.size());
        out.insert(out.end(), v_.begin(), v_.begin() + take);
    }
    update({});
    return out;
}

void
HmacDrbg::reseed(const Bytes &material)
{
    update(material);
}

} // namespace veil::crypto
