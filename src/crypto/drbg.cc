#include "crypto/drbg.hh"

namespace veil::crypto {

HmacDrbg::HmacDrbg(const Bytes &seed_material)
{
    k_.fill(0x00);
    v_.fill(0x01);
    update(seed_material);
}

void
HmacDrbg::update(const Bytes &provided)
{
    // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
    {
        HmacSha256 h(k_.data(), k_.size());
        h.update(v_.data(), v_.size());
        uint8_t zero = 0x00;
        h.update(&zero, 1);
        h.update(provided);
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), k_.begin());
    }
    {
        HmacSha256 h(k_.data(), k_.size());
        h.update(v_.data(), v_.size());
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), v_.begin());
    }
    if (provided.empty())
        return;
    {
        HmacSha256 h(k_.data(), k_.size());
        h.update(v_.data(), v_.size());
        uint8_t one = 0x01;
        h.update(&one, 1);
        h.update(provided);
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), k_.begin());
    }
    {
        HmacSha256 h(k_.data(), k_.size());
        h.update(v_.data(), v_.size());
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), v_.begin());
    }
}

Bytes
HmacDrbg::generate(size_t len)
{
    Bytes out;
    out.reserve(len);
    while (out.size() < len) {
        HmacSha256 h(k_.data(), k_.size());
        h.update(v_.data(), v_.size());
        Digest d = h.finish();
        std::copy(d.begin(), d.end(), v_.begin());
        size_t take = std::min(d.size(), len - out.size());
        out.insert(out.end(), v_.begin(), v_.begin() + take);
    }
    update({});
    return out;
}

void
HmacDrbg::reseed(const Bytes &material)
{
    update(material);
}

} // namespace veil::crypto
