#include "crypto/aes.hh"

#include <algorithm>
#include <cstring>

#include "crypto/stats.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace veil::crypto {

namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16,
};

constexpr std::array<uint8_t, 256>
makeInvSbox()
{
    std::array<uint8_t, 256> t{};
    for (int i = 0; i < 256; ++i)
        t[kSbox[i]] = static_cast<uint8_t>(i);
    return t;
}

constexpr auto kInvSbox = makeInvSbox();

constexpr uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
        b >>= 1;
    }
    return p;
}

constexpr uint32_t
rotr8(uint32_t x)
{
    return (x >> 8) | (x << 24);
}

// Combined SubBytes+ShiftRows+MixColumns tables: Te0 packs the
// MixColumns column (2s, s, s, 3s) of the substituted byte; Te1..Te3
// are byte rotations of Te0 for the other row positions.
constexpr std::array<uint32_t, 256>
makeTe0()
{
    std::array<uint32_t, 256> t{};
    for (int i = 0; i < 256; ++i) {
        uint32_t s = kSbox[i];
        t[i] = (uint32_t(gmul(uint8_t(s), 2)) << 24) | (s << 16) | (s << 8) |
               gmul(uint8_t(s), 3);
    }
    return t;
}

// Inverse tables: Td0 packs InvMixColumns (14s, 9s, 13s, 11s) of the
// inverse-substituted byte.
constexpr std::array<uint32_t, 256>
makeTd0()
{
    std::array<uint32_t, 256> t{};
    for (int i = 0; i < 256; ++i) {
        uint8_t s = kInvSbox[i];
        t[i] = (uint32_t(gmul(s, 14)) << 24) | (uint32_t(gmul(s, 9)) << 16) |
               (uint32_t(gmul(s, 13)) << 8) | gmul(s, 11);
    }
    return t;
}

template <int N>
constexpr std::array<uint32_t, 256>
rotTable(const std::array<uint32_t, 256> &base)
{
    std::array<uint32_t, 256> t{};
    for (int i = 0; i < 256; ++i) {
        uint32_t v = base[i];
        for (int r = 0; r < N; ++r)
            v = rotr8(v);
        t[i] = v;
    }
    return t;
}

constexpr auto kTe0 = makeTe0();
constexpr auto kTe1 = rotTable<1>(kTe0);
constexpr auto kTe2 = rotTable<2>(kTe0);
constexpr auto kTe3 = rotTable<3>(kTe0);
constexpr auto kTd0 = makeTd0();
constexpr auto kTd1 = rotTable<1>(kTd0);
constexpr auto kTd2 = rotTable<2>(kTd0);
constexpr auto kTd3 = rotTable<3>(kTd0);

inline uint32_t
loadBe32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return __builtin_bswap32(v);
}

inline void
storeBe32(uint8_t *p, uint32_t v)
{
    v = __builtin_bswap32(v);
    std::memcpy(p, &v, 4);
}

inline uint32_t
subWord(uint32_t w)
{
    return (uint32_t(kSbox[(w >> 24) & 0xff]) << 24) |
           (uint32_t(kSbox[(w >> 16) & 0xff]) << 16) |
           (uint32_t(kSbox[(w >> 8) & 0xff]) << 8) | kSbox[w & 0xff];
}

// InvMixColumns of a round-key word, via the Td/Sbox identity
// Td[kSbox[b]] = InvMixColumns-coefficients * b.
inline uint32_t
invMixColumnsWord(uint32_t w)
{
    return kTd0[kSbox[(w >> 24) & 0xff]] ^ kTd1[kSbox[(w >> 16) & 0xff]] ^
           kTd2[kSbox[(w >> 8) & 0xff]] ^ kTd3[kSbox[w & 0xff]];
}

#if defined(__x86_64__)

bool
aesNiAvailable()
{
    static const bool avail =
        __builtin_cpu_supports("aes") && __builtin_cpu_supports("sse2");
    return avail;
}

__attribute__((target("aes,sse2"))) inline __m128i
encryptBlockNi(const uint8_t rk[176], __m128i b)
{
    const auto *k = reinterpret_cast<const __m128i *>(rk);
    b = _mm_xor_si128(b, _mm_load_si128(k));
    for (int r = 1; r <= 9; ++r)
        b = _mm_aesenc_si128(b, _mm_load_si128(k + r));
    return _mm_aesenclast_si128(b, _mm_load_si128(k + 10));
}

// CTR keystream with four independent blocks in flight to cover the
// aesenc latency chain.
__attribute__((target("aes,sse2"))) void
ctrXorNi(const uint8_t rk[176], uint64_t nonce, uint64_t counter,
         const uint8_t *in, uint8_t *out, size_t len)
{
    size_t off = 0;
    while (len - off >= 64) {
        __m128i b0 = _mm_set_epi64x(int64_t(counter), int64_t(nonce));
        __m128i b1 = _mm_set_epi64x(int64_t(counter + 1), int64_t(nonce));
        __m128i b2 = _mm_set_epi64x(int64_t(counter + 2), int64_t(nonce));
        __m128i b3 = _mm_set_epi64x(int64_t(counter + 3), int64_t(nonce));
        const auto *k = reinterpret_cast<const __m128i *>(rk);
        __m128i k0 = _mm_load_si128(k);
        b0 = _mm_xor_si128(b0, k0);
        b1 = _mm_xor_si128(b1, k0);
        b2 = _mm_xor_si128(b2, k0);
        b3 = _mm_xor_si128(b3, k0);
        for (int r = 1; r <= 9; ++r) {
            __m128i kr = _mm_load_si128(k + r);
            b0 = _mm_aesenc_si128(b0, kr);
            b1 = _mm_aesenc_si128(b1, kr);
            b2 = _mm_aesenc_si128(b2, kr);
            b3 = _mm_aesenc_si128(b3, kr);
        }
        __m128i klast = _mm_load_si128(k + 10);
        b0 = _mm_aesenclast_si128(b0, klast);
        b1 = _mm_aesenclast_si128(b1, klast);
        b2 = _mm_aesenclast_si128(b2, klast);
        b3 = _mm_aesenclast_si128(b3, klast);

        const auto *ip = reinterpret_cast<const __m128i *>(in + off);
        auto *op = reinterpret_cast<__m128i *>(out + off);
        _mm_storeu_si128(op + 0,
                         _mm_xor_si128(_mm_loadu_si128(ip + 0), b0));
        _mm_storeu_si128(op + 1,
                         _mm_xor_si128(_mm_loadu_si128(ip + 1), b1));
        _mm_storeu_si128(op + 2,
                         _mm_xor_si128(_mm_loadu_si128(ip + 2), b2));
        _mm_storeu_si128(op + 3,
                         _mm_xor_si128(_mm_loadu_si128(ip + 3), b3));
        off += 64;
        counter += 4;
    }
    while (off < len) {
        __m128i b = encryptBlockNi(
            rk, _mm_set_epi64x(int64_t(counter), int64_t(nonce)));
        alignas(16) uint8_t ks[16];
        _mm_store_si128(reinterpret_cast<__m128i *>(ks), b);
        size_t take = std::min<size_t>(16, len - off);
        for (size_t i = 0; i < take; ++i)
            out[off + i] = static_cast<uint8_t>(in[off + i] ^ ks[i]);
        off += take;
        ++counter;
    }
}

#endif // __x86_64__

} // namespace

Aes128::Aes128(const AesKey &key)
{
    noteAesKeySchedule();

    // FIPS 197 §5.2, word form: ek_[i] = ek_[i-4] ^ f(ek_[i-1]).
    for (int i = 0; i < 4; ++i)
        ek_[i] = loadBe32(key.data() + 4 * i);
    uint32_t rcon = 0x01000000;
    for (int i = 4; i < 44; i += 4) {
        uint32_t t = ek_[i - 1];
        t = subWord((t << 8) | (t >> 24)) ^ rcon; // RotWord + SubWord
        ek_[i] = ek_[i - 4] ^ t;
        ek_[i + 1] = ek_[i - 3] ^ ek_[i];
        ek_[i + 2] = ek_[i - 2] ^ ek_[i + 1];
        ek_[i + 3] = ek_[i - 1] ^ ek_[i + 2];
        rcon = uint32_t(gmul(uint8_t(rcon >> 24), 2)) << 24;
    }

    // Equivalent inverse cipher (FIPS 197 §5.3.5): reversed schedule
    // with InvMixColumns applied to the interior round keys.
    for (int j = 0; j < 4; ++j) {
        dk_[j] = ek_[40 + j];
        dk_[40 + j] = ek_[j];
    }
    for (int r = 1; r <= 9; ++r)
        for (int j = 0; j < 4; ++j)
            dk_[4 * r + j] = invMixColumnsWord(ek_[4 * (10 - r) + j]);

    // Byte-order copy for the AES-NI path.
    for (int i = 0; i < 44; ++i)
        storeBe32(ekBytes_ + 4 * i, ek_[i]);
}

AesBlock
Aes128::encryptBlockTables(const AesBlock &in) const
{
    uint32_t s0 = loadBe32(in.data() + 0) ^ ek_[0];
    uint32_t s1 = loadBe32(in.data() + 4) ^ ek_[1];
    uint32_t s2 = loadBe32(in.data() + 8) ^ ek_[2];
    uint32_t s3 = loadBe32(in.data() + 12) ^ ek_[3];

    for (int r = 1; r <= 9; ++r) {
        uint32_t t0 = kTe0[s0 >> 24] ^ kTe1[(s1 >> 16) & 0xff] ^
                      kTe2[(s2 >> 8) & 0xff] ^ kTe3[s3 & 0xff] ^ ek_[4 * r];
        uint32_t t1 = kTe0[s1 >> 24] ^ kTe1[(s2 >> 16) & 0xff] ^
                      kTe2[(s3 >> 8) & 0xff] ^ kTe3[s0 & 0xff] ^ ek_[4 * r + 1];
        uint32_t t2 = kTe0[s2 >> 24] ^ kTe1[(s3 >> 16) & 0xff] ^
                      kTe2[(s0 >> 8) & 0xff] ^ kTe3[s1 & 0xff] ^ ek_[4 * r + 2];
        uint32_t t3 = kTe0[s3 >> 24] ^ kTe1[(s0 >> 16) & 0xff] ^
                      kTe2[(s1 >> 8) & 0xff] ^ kTe3[s2 & 0xff] ^ ek_[4 * r + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    AesBlock out;
    storeBe32(out.data() + 0,
              ((uint32_t(kSbox[s0 >> 24]) << 24) |
               (uint32_t(kSbox[(s1 >> 16) & 0xff]) << 16) |
               (uint32_t(kSbox[(s2 >> 8) & 0xff]) << 8) |
               kSbox[s3 & 0xff]) ^
                  ek_[40]);
    storeBe32(out.data() + 4,
              ((uint32_t(kSbox[s1 >> 24]) << 24) |
               (uint32_t(kSbox[(s2 >> 16) & 0xff]) << 16) |
               (uint32_t(kSbox[(s3 >> 8) & 0xff]) << 8) |
               kSbox[s0 & 0xff]) ^
                  ek_[41]);
    storeBe32(out.data() + 8,
              ((uint32_t(kSbox[s2 >> 24]) << 24) |
               (uint32_t(kSbox[(s3 >> 16) & 0xff]) << 16) |
               (uint32_t(kSbox[(s0 >> 8) & 0xff]) << 8) |
               kSbox[s1 & 0xff]) ^
                  ek_[42]);
    storeBe32(out.data() + 12,
              ((uint32_t(kSbox[s3 >> 24]) << 24) |
               (uint32_t(kSbox[(s0 >> 16) & 0xff]) << 16) |
               (uint32_t(kSbox[(s1 >> 8) & 0xff]) << 8) |
               kSbox[s2 & 0xff]) ^
                  ek_[43]);
    return out;
}

AesBlock
Aes128::encryptBlock(const AesBlock &in) const
{
#if defined(__x86_64__)
    if (aesNiAvailable()) {
        AesBlock out;
        __m128i b = encryptBlockNi(
            ekBytes_,
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(in.data())));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out.data()), b);
        return out;
    }
#endif
    return encryptBlockTables(in);
}

AesBlock
Aes128::decryptBlock(const AesBlock &in) const
{
    uint32_t s0 = loadBe32(in.data() + 0) ^ dk_[0];
    uint32_t s1 = loadBe32(in.data() + 4) ^ dk_[1];
    uint32_t s2 = loadBe32(in.data() + 8) ^ dk_[2];
    uint32_t s3 = loadBe32(in.data() + 12) ^ dk_[3];

    for (int r = 1; r <= 9; ++r) {
        uint32_t t0 = kTd0[s0 >> 24] ^ kTd1[(s3 >> 16) & 0xff] ^
                      kTd2[(s2 >> 8) & 0xff] ^ kTd3[s1 & 0xff] ^ dk_[4 * r];
        uint32_t t1 = kTd0[s1 >> 24] ^ kTd1[(s0 >> 16) & 0xff] ^
                      kTd2[(s3 >> 8) & 0xff] ^ kTd3[s2 & 0xff] ^ dk_[4 * r + 1];
        uint32_t t2 = kTd0[s2 >> 24] ^ kTd1[(s1 >> 16) & 0xff] ^
                      kTd2[(s0 >> 8) & 0xff] ^ kTd3[s3 & 0xff] ^ dk_[4 * r + 2];
        uint32_t t3 = kTd0[s3 >> 24] ^ kTd1[(s2 >> 16) & 0xff] ^
                      kTd2[(s1 >> 8) & 0xff] ^ kTd3[s0 & 0xff] ^ dk_[4 * r + 3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    AesBlock out;
    storeBe32(out.data() + 0,
              ((uint32_t(kInvSbox[s0 >> 24]) << 24) |
               (uint32_t(kInvSbox[(s3 >> 16) & 0xff]) << 16) |
               (uint32_t(kInvSbox[(s2 >> 8) & 0xff]) << 8) |
               kInvSbox[s1 & 0xff]) ^
                  dk_[40]);
    storeBe32(out.data() + 4,
              ((uint32_t(kInvSbox[s1 >> 24]) << 24) |
               (uint32_t(kInvSbox[(s0 >> 16) & 0xff]) << 16) |
               (uint32_t(kInvSbox[(s3 >> 8) & 0xff]) << 8) |
               kInvSbox[s2 & 0xff]) ^
                  dk_[41]);
    storeBe32(out.data() + 8,
              ((uint32_t(kInvSbox[s2 >> 24]) << 24) |
               (uint32_t(kInvSbox[(s1 >> 16) & 0xff]) << 16) |
               (uint32_t(kInvSbox[(s0 >> 8) & 0xff]) << 8) |
               kInvSbox[s3 & 0xff]) ^
                  dk_[42]);
    storeBe32(out.data() + 12,
              ((uint32_t(kInvSbox[s3 >> 24]) << 24) |
               (uint32_t(kInvSbox[(s2 >> 16) & 0xff]) << 16) |
               (uint32_t(kInvSbox[(s1 >> 8) & 0xff]) << 8) |
               kInvSbox[s0 & 0xff]) ^
                  dk_[43]);
    return out;
}

void
aesCtrXor(const Aes128 &cipher, uint64_t nonce, uint64_t counter0,
          const uint8_t *in, uint8_t *out, size_t len)
{
#if defined(__x86_64__)
    if (aesNiAvailable()) {
        ctrXorNi(cipher.ekBytes_, nonce, counter0, in, out, len);
        return;
    }
#endif
    uint64_t counter = counter0;
    size_t off = 0;
    AesBlock ctr_block;
    std::memcpy(ctr_block.data(), &nonce, 8);
    while (off < len) {
        std::memcpy(ctr_block.data() + 8, &counter, 8);
        AesBlock ks = cipher.encryptBlockTables(ctr_block);
        size_t take = std::min<size_t>(16, len - off);
        if (take == 16) {
            // Word-wise XOR of a full keystream block.
            uint64_t a, b, ka, kb;
            std::memcpy(&a, in + off, 8);
            std::memcpy(&b, in + off + 8, 8);
            std::memcpy(&ka, ks.data(), 8);
            std::memcpy(&kb, ks.data() + 8, 8);
            a ^= ka;
            b ^= kb;
            std::memcpy(out + off, &a, 8);
            std::memcpy(out + off + 8, &b, 8);
        } else {
            for (size_t i = 0; i < take; ++i)
                out[off + i] = static_cast<uint8_t>(in[off + i] ^ ks[i]);
        }
        off += take;
        ++counter;
    }
}

} // namespace veil::crypto
