/**
 * @file
 * Symmetric "signatures" over digests. The paper leaves both the PSP
 * report signature scheme and the kernel-module signature scheme
 * abstract (its prototype implements neither); we realize them as
 * HMAC-SHA256 under provisioned keys, which preserves the verification
 * logic (measure → sign → verify → TOCTOU-safe install) without pulling
 * in an asymmetric-crypto implementation.
 */
#ifndef VEIL_CRYPTO_SIG_HH_
#define VEIL_CRYPTO_SIG_HH_

#include "crypto/hmac.hh"

namespace veil::crypto {

/** A detached signature over a digest. */
using Signature = std::array<uint8_t, 32>;

/** Sign @p digest with @p key in the given domain ("psp", "module", ...). */
Signature signDigest(const Bytes &key, const std::string &domain,
                     const Digest &digest);

/** Constant-time verification. */
bool verifyDigest(const Bytes &key, const std::string &domain,
                  const Digest &digest, const Signature &sig);

} // namespace veil::crypto

#endif // VEIL_CRYPTO_SIG_HH_
