/**
 * @file
 * Signatures over digests, in two strengths:
 *
 *  - Symmetric HMAC-SHA256 "signatures" under a provisioned key
 *    (signDigest / verifyDigest). Used where signer and verifier share
 *    a secret inside the TCB — the kernel-module signing path.
 *
 *  - Asymmetric Schnorr signatures over the DH group (asymSign /
 *    asymVerify). Used by the simulated PSP so that attestation
 *    reports and the platform certificate chain can be verified by a
 *    remote party holding only the platform's *public* root key — the
 *    verifier never needs (and never gets) signing material, so a
 *    compromised relay cannot forge reports. Simulation-strength
 *    parameters (the 256-bit DH group of dh.hh); swap for ECDSA/P-384
 *    in a production port — the chain-walk logic is unchanged.
 */
#ifndef VEIL_CRYPTO_SIG_HH_
#define VEIL_CRYPTO_SIG_HH_

#include "crypto/bignum.hh"
#include "crypto/hmac.hh"

namespace veil::crypto {

class HmacDrbg;

/** A detached symmetric signature over a digest. */
using Signature = std::array<uint8_t, 32>;

/** Sign @p digest with @p key in the given domain ("psp", "module", ...). */
Signature signDigest(const Bytes &key, const std::string &domain,
                     const Digest &digest);

/** Constant-time verification. */
bool verifyDigest(const Bytes &key, const std::string &domain,
                  const Digest &digest, const Signature &sig);

// ---- Asymmetric (Schnorr over the dh.hh group) ----

/** A detached Schnorr signature: r (32 bytes) || s (32 bytes). */
using AsymSignature = std::array<uint8_t, 64>;

/** An asymmetric signing key pair. */
struct AsymKeyPair
{
    BigInt secret;   ///< private exponent x, 2 <= x <= p-2
    Bytes publicKey; ///< y = g^x mod p, big-endian, 32 bytes
};

/** Generate a signing key pair from DRBG output. */
AsymKeyPair asymGenerate(HmacDrbg &drbg);

/**
 * Sign @p digest in @p domain. Deterministic: the nonce is derived
 * RFC 6979-style from the secret key and the message, so identical
 * inputs yield identical signatures (required by the simulator's
 * reproducibility contract).
 */
AsymSignature asymSign(const AsymKeyPair &key, const std::string &domain,
                       const Digest &digest);

/**
 * Verify @p sig over @p digest under @p public_key (32-byte big-endian
 * group element). Rejects degenerate public keys (y <= 1, y >= p-1)
 * and out-of-range signature components.
 */
bool asymVerify(const Bytes &public_key, const std::string &domain,
                const Digest &digest, const AsymSignature &sig);

} // namespace veil::crypto

#endif // VEIL_CRYPTO_SIG_HH_
