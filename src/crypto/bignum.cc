#include "crypto/bignum.hh"

#include <algorithm>

#include "base/log.hh"

namespace veil::crypto {

BigInt::BigInt(uint64_t v)
{
    if (v != 0)
        limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32)
        limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

void
BigInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

BigInt
BigInt::fromHex(const std::string &hex)
{
    std::string h = hex;
    if (h.size() % 2 != 0)
        h.insert(h.begin(), '0');
    return fromBytes(hexDecode(h));
}

BigInt
BigInt::fromBytes(const Bytes &be)
{
    BigInt out;
    size_t nbytes = be.size();
    out.limbs_.assign((nbytes + 3) / 4, 0);
    for (size_t i = 0; i < nbytes; ++i) {
        // be[0] is the most significant byte.
        size_t byte_index = nbytes - 1 - i; // significance of be position
        size_t pos = i;                     // position from the end
        (void)byte_index;
        uint8_t b = be[nbytes - 1 - pos];
        out.limbs_[pos / 4] |= static_cast<uint32_t>(b) << (8 * (pos % 4));
    }
    out.trim();
    return out;
}

Bytes
BigInt::toBytes(size_t len) const
{
    size_t nbits = bitLength();
    size_t minimal = (nbits + 7) / 8;
    if (minimal == 0)
        minimal = 1;
    size_t total = len == 0 ? minimal : len;
    ensure(total >= minimal, "BigInt::toBytes: value does not fit");
    Bytes out(total, 0);
    for (size_t pos = 0; pos < total; ++pos) {
        size_t limb = pos / 4;
        if (limb >= limbs_.size())
            break;
        out[total - 1 - pos] =
            static_cast<uint8_t>(limbs_[limb] >> (8 * (pos % 4)));
    }
    return out;
}

std::string
BigInt::toHex() const
{
    if (isZero())
        return "0";
    std::string s = hexEncode(toBytes());
    size_t i = 0;
    while (i + 1 < s.size() && s[i] == '0')
        ++i;
    return s.substr(i);
}

size_t
BigInt::bitLength() const
{
    if (limbs_.empty())
        return 0;
    uint32_t top = limbs_.back();
    size_t bits = (limbs_.size() - 1) * 32;
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

bool
BigInt::bit(size_t i) const
{
    size_t limb = i / 32;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 32)) & 1;
}

int
BigInt::cmp(const BigInt &a, const BigInt &b)
{
    if (a.limbs_.size() != b.limbs_.size())
        return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i])
            return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigInt
BigInt::add(const BigInt &a, const BigInt &b)
{
    BigInt out;
    size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    out.limbs_.assign(n + 1, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t av = i < a.limbs_.size() ? a.limbs_[i] : 0;
        uint64_t bv = i < b.limbs_.size() ? b.limbs_[i] : 0;
        uint64_t s = av + bv + carry;
        out.limbs_[i] = static_cast<uint32_t>(s);
        carry = s >> 32;
    }
    out.limbs_[n] = static_cast<uint32_t>(carry);
    out.trim();
    return out;
}

BigInt
BigInt::sub(const BigInt &a, const BigInt &b)
{
    ensure(cmp(a, b) >= 0, "BigInt::sub: would underflow");
    BigInt out;
    out.limbs_.assign(a.limbs_.size(), 0);
    int64_t borrow = 0;
    for (size_t i = 0; i < a.limbs_.size(); ++i) {
        int64_t av = a.limbs_[i];
        int64_t bv = i < b.limbs_.size() ? b.limbs_[i] : 0;
        int64_t d = av - bv - borrow;
        if (d < 0) {
            d += (int64_t(1) << 32);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_[i] = static_cast<uint32_t>(d);
    }
    out.trim();
    return out;
}

BigInt
BigInt::mul(const BigInt &a, const BigInt &b)
{
    if (a.isZero() || b.isZero())
        return BigInt();
    BigInt out;
    out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
    for (size_t i = 0; i < a.limbs_.size(); ++i) {
        uint64_t carry = 0;
        for (size_t j = 0; j < b.limbs_.size(); ++j) {
            uint64_t cur = out.limbs_[i + j] +
                           uint64_t(a.limbs_[i]) * b.limbs_[j] + carry;
            out.limbs_[i + j] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
        }
        size_t k = i + b.limbs_.size();
        while (carry) {
            uint64_t cur = out.limbs_[k] + carry;
            out.limbs_[k] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigInt
BigInt::shl(size_t bits) const
{
    if (isZero() || bits == 0)
        return *this;
    size_t limb_shift = bits / 32;
    size_t bit_shift = bits % 32;
    BigInt out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        uint64_t v = uint64_t(limbs_[i]) << bit_shift;
        out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
        out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
    }
    out.trim();
    return out;
}

BigInt
BigInt::shr1() const
{
    BigInt out;
    out.limbs_.assign(limbs_.size(), 0);
    uint32_t carry = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
        out.limbs_[i] = (limbs_[i] >> 1) | (carry << 31);
        carry = limbs_[i] & 1;
    }
    out.trim();
    return out;
}

BigInt
BigInt::mod(const BigInt &a, const BigInt &m)
{
    ensure(!m.isZero(), "BigInt::mod: zero modulus");
    if (cmp(a, m) < 0)
        return a;
    size_t shift = a.bitLength() - m.bitLength();
    BigInt r = a;
    BigInt d = m.shl(shift);
    for (size_t i = 0; i <= shift; ++i) {
        if (cmp(r, d) >= 0)
            r = sub(r, d);
        d = d.shr1();
    }
    return r;
}

BigInt
BigInt::modExp(const BigInt &base, const BigInt &exp, const BigInt &m)
{
    ensure(!m.isZero(), "BigInt::modExp: zero modulus");
    if (m == BigInt(1))
        return BigInt();
    BigInt result(1);
    BigInt b = mod(base, m);
    size_t nbits = exp.bitLength();
    for (size_t i = nbits; i-- > 0;) {
        result = mod(mul(result, result), m);
        if (exp.bit(i))
            result = mod(mul(result, b), m);
    }
    return result;
}

bool
BigInt::isProbablePrime(const BigInt &n, int rounds)
{
    static const uint32_t kBases[] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
                                      31, 37, 41, 43, 47, 53};
    if (n.isZero() || n == BigInt(1))
        return false;
    for (uint32_t p : kBases) {
        if (n == BigInt(p))
            return true;
        if (mod(n, BigInt(p)).isZero())
            return false;
    }
    // Write n-1 = d * 2^s
    BigInt n_minus_1 = sub(n, BigInt(1));
    BigInt d = n_minus_1;
    size_t s = 0;
    while (!d.isOdd()) {
        d = d.shr1();
        ++s;
    }
    int use = std::min<int>(rounds, 16);
    for (int r = 0; r < use; ++r) {
        BigInt a(kBases[r]);
        BigInt x = modExp(a, d, n);
        if (x == BigInt(1) || x == n_minus_1)
            continue;
        bool witness = true;
        for (size_t i = 1; i < s; ++i) {
            x = mod(mul(x, x), n);
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

} // namespace veil::crypto
