#include "crypto/sig.hh"

namespace veil::crypto {

Signature
signDigest(const Bytes &key, const std::string &domain, const Digest &digest)
{
    HmacSha256 ctx(key);
    ctx.update(domain.data(), domain.size());
    uint8_t sep = 0x00;
    ctx.update(&sep, 1);
    ctx.update(digest.data(), digest.size());
    Digest mac = ctx.finish();
    Signature sig;
    std::copy(mac.begin(), mac.end(), sig.begin());
    return sig;
}

bool
verifyDigest(const Bytes &key, const std::string &domain, const Digest &digest,
             const Signature &sig)
{
    Signature expect = signDigest(key, domain, digest);
    return ctEqual(expect.data(), sig.data(), sig.size());
}

} // namespace veil::crypto
