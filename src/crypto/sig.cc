#include "crypto/sig.hh"

#include "crypto/dh.hh"
#include "crypto/drbg.hh"
#include "crypto/sha256.hh"

namespace veil::crypto {

Signature
signDigest(const Bytes &key, const std::string &domain, const Digest &digest)
{
    HmacSha256 ctx(key);
    ctx.update(domain.data(), domain.size());
    uint8_t sep = 0x00;
    ctx.update(&sep, 1);
    ctx.update(digest.data(), digest.size());
    Digest mac = ctx.finish();
    Signature sig;
    std::copy(mac.begin(), mac.end(), sig.begin());
    return sig;
}

bool
verifyDigest(const Bytes &key, const std::string &domain, const Digest &digest,
             const Signature &sig)
{
    Signature expect = signDigest(key, domain, digest);
    return ctEqual(expect.data(), sig.data(), sig.size());
}

// ---- Schnorr over the dh.hh group ----
//
// Group: Z_p^* with p the dh.hh 256-bit prime and generator g. The
// exponent ring is Z_{p-1} (composite order — simulation strength, per
// the dh.hh parameter note). Sign:
//   k   <- deterministic nonce in [2, p-2]
//   r   = g^k mod p
//   e   = SHA256(domain || 0x00 || r || y || digest) mod (p-1)
//   s   = (k + e*x) mod (p-1)
// Verify: g^s == r * y^e (mod p).

namespace {

const BigInt &
schnorrPrime()
{
    static const BigInt p = BigInt::fromHex(kGroupPrimeHex);
    return p;
}

const BigInt &
schnorrOrder()
{
    static const BigInt q = BigInt::sub(schnorrPrime(), BigInt(1));
    return q;
}

BigInt
challenge(const std::string &domain, const Bytes &r, const Bytes &y,
          const Digest &digest)
{
    Sha256 h;
    h.update(domain.data(), domain.size());
    uint8_t sep = 0x00;
    h.update(&sep, 1);
    h.update(r.data(), r.size());
    h.update(y.data(), y.size());
    h.update(digest.data(), digest.size());
    Digest e = h.finish();
    Bytes eb(e.begin(), e.end());
    return BigInt::mod(BigInt::fromBytes(eb), schnorrOrder());
}

/** Group-element range check: 2 <= v <= p-2 (rejects the degenerate
 *  order-1/order-2 elements 0, 1 and p-1, mirroring dhSharedSecret). */
bool
elementInRange(const BigInt &v)
{
    return BigInt::cmp(v, BigInt(1)) > 0 &&
           BigInt::cmp(v, BigInt::sub(schnorrPrime(), BigInt(1))) < 0;
}

} // namespace

AsymKeyPair
asymGenerate(HmacDrbg &drbg)
{
    const BigInt &p = schnorrPrime();
    AsymKeyPair kp;
    for (;;) {
        Bytes raw = drbg.generate(32);
        kp.secret = BigInt::fromBytes(raw);
        if (BigInt::cmp(kp.secret, BigInt(2)) >= 0 &&
            BigInt::cmp(kp.secret, BigInt::sub(p, BigInt(1))) < 0) {
            break;
        }
    }
    kp.publicKey =
        BigInt::modExp(BigInt(kGroupGenerator), kp.secret, p).toBytes(32);
    return kp;
}

AsymSignature
asymSign(const AsymKeyPair &key, const std::string &domain,
         const Digest &digest)
{
    const BigInt &p = schnorrPrime();
    const BigInt &q = schnorrOrder();

    // Deterministic nonce: DRBG over (secret || domain || digest).
    Bytes seed = key.secret.toBytes(32);
    appendBytes(seed, domain.data(), domain.size());
    appendBytes(seed, digest.data(), digest.size());
    HmacDrbg drbg(seed);
    BigInt k;
    for (;;) {
        Bytes raw = drbg.generate(32);
        k = BigInt::fromBytes(raw);
        if (BigInt::cmp(k, BigInt(2)) >= 0 &&
            BigInt::cmp(k, BigInt::sub(p, BigInt(1))) < 0) {
            break;
        }
    }

    Bytes r = BigInt::modExp(BigInt(kGroupGenerator), k, p).toBytes(32);
    BigInt e = challenge(domain, r, key.publicKey, digest);
    BigInt s = BigInt::mod(BigInt::add(k, BigInt::mul(e, key.secret)), q);

    AsymSignature sig{};
    Bytes sb = s.toBytes(32);
    std::copy(r.begin(), r.end(), sig.begin());
    std::copy(sb.begin(), sb.end(), sig.begin() + 32);
    return sig;
}

bool
asymVerify(const Bytes &public_key, const std::string &domain,
           const Digest &digest, const AsymSignature &sig)
{
    const BigInt &p = schnorrPrime();
    if (public_key.size() != 32)
        return false;
    BigInt y = BigInt::fromBytes(public_key);
    if (!elementInRange(y))
        return false;

    Bytes rb(sig.begin(), sig.begin() + 32);
    Bytes sb(sig.begin() + 32, sig.end());
    BigInt r = BigInt::fromBytes(rb);
    BigInt s = BigInt::fromBytes(sb);
    // r must be a live group element; s is an exponent mod p-1 (reject
    // the non-canonical high range to keep signatures non-malleable).
    if (r.isZero() || BigInt::cmp(r, p) >= 0)
        return false;
    if (BigInt::cmp(s, schnorrOrder()) >= 0)
        return false;

    BigInt e = challenge(domain, rb, public_key, digest);
    BigInt lhs = BigInt::modExp(BigInt(kGroupGenerator), s, p);
    BigInt rhs = BigInt::mod(BigInt::mul(r, BigInt::modExp(y, e, p)), p);
    return lhs == rhs;
}

} // namespace veil::crypto
