/**
 * @file
 * AES-128 block cipher (FIPS 197) with CTR-mode streaming. VeilS-ENC
 * encrypts evicted enclave pages with a per-enclave AES-128-CTR key
 * before releasing them to the untrusted OS (§6.2).
 */
#ifndef VEIL_CRYPTO_AES_HH_
#define VEIL_CRYPTO_AES_HH_

#include <array>
#include <cstdint>

#include "base/bytes.hh"

namespace veil::crypto {

using AesKey = std::array<uint8_t, 16>;
using AesBlock = std::array<uint8_t, 16>;

/** AES-128 with precomputed round keys. */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /** Encrypt a single 16-byte block. */
    AesBlock encryptBlock(const AesBlock &in) const;

    /** Decrypt a single 16-byte block. */
    AesBlock decryptBlock(const AesBlock &in) const;

  private:
    uint8_t roundKeys_[11][16];
};

/**
 * CTR-mode keystream XOR. Encryption and decryption are the same
 * operation; @p nonce selects the keystream (do not reuse a nonce with
 * the same key for different plaintexts).
 */
void aesCtrXor(const Aes128 &cipher, uint64_t nonce, uint64_t counter0,
               const uint8_t *in, uint8_t *out, size_t len);

} // namespace veil::crypto

#endif // VEIL_CRYPTO_AES_HH_
