/**
 * @file
 * AES-128 block cipher (FIPS 197) with CTR-mode streaming. VeilS-ENC
 * encrypts evicted enclave pages with a per-enclave AES-128-CTR key
 * before releasing them to the untrusted OS (§6.2).
 *
 * The round function uses combined compile-time T-tables (SubBytes +
 * ShiftRows + MixColumns folded into four 32-bit lookups per column),
 * with an AES-NI fast path for encryption when the host CPU has one.
 * Construction expands the key schedule once; hot callers (ENC paging,
 * the secure channel) cache the Aes128 so steady-state operations do no
 * key expansion. Host speed only — simulated cycles are charged by
 * callers through the cost model (DESIGN.md §7).
 */
#ifndef VEIL_CRYPTO_AES_HH_
#define VEIL_CRYPTO_AES_HH_

#include <array>
#include <cstdint>

#include "base/bytes.hh"

namespace veil::crypto {

using AesKey = std::array<uint8_t, 16>;
using AesBlock = std::array<uint8_t, 16>;

/** AES-128 with precomputed round keys. */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /** Encrypt a single 16-byte block (fastest available path). */
    AesBlock encryptBlock(const AesBlock &in) const;

    /** Decrypt a single 16-byte block. */
    AesBlock decryptBlock(const AesBlock &in) const;

    /**
     * Portable T-table encryption path, always available regardless of
     * host CPU features. Tests pin it against the dispatched path and
     * the FIPS-197 vectors; benches use it as the no-AES-NI reference.
     */
    AesBlock encryptBlockTables(const AesBlock &in) const;

  private:
    friend void aesCtrXor(const Aes128 &cipher, uint64_t nonce,
                          uint64_t counter0, const uint8_t *in, uint8_t *out,
                          size_t len);

    uint32_t ek_[44];                   ///< encryption keys, BE-packed words
    uint32_t dk_[44];                   ///< equivalent-inverse-cipher keys
    alignas(16) uint8_t ekBytes_[176];  ///< encryption keys, byte order
};

/**
 * CTR-mode keystream XOR. Encryption and decryption are the same
 * operation; @p nonce selects the keystream (do not reuse a nonce with
 * the same key for different plaintexts). The counter block layout is
 * nonce||counter, both little-endian, counter incrementing per 16-byte
 * block — unchanged from the seed implementation.
 */
void aesCtrXor(const Aes128 &cipher, uint64_t nonce, uint64_t counter0,
               const uint8_t *in, uint8_t *out, size_t len);

} // namespace veil::crypto

#endif // VEIL_CRYPTO_AES_HH_
