/**
 * @file
 * Host-side crypto instrumentation. These counters track expensive
 * key-derivation work (AES key schedules, HMAC ipad/opad derivation)
 * and bulk hashing so tests can pin the steady-state contract: warm
 * ENC page-out/page-in, LOG appends, and channel messages must perform
 * zero key derivation. The counters are host observability only — they
 * never charge simulated cycles (see DESIGN.md §7).
 *
 * A single optional trace hook forwards these events to the VeilTrace
 * subsystem (DESIGN.md §8): the running Machine installs it so crypto
 * work shows up in the per-VCPU event timeline. The hook is host-side
 * observability too — it must never charge cycles or mutate simulated
 * state.
 */
#ifndef VEIL_CRYPTO_STATS_HH_
#define VEIL_CRYPTO_STATS_HH_

#include <cstdint>

#include "base/stat_counter.hh"

namespace veil::crypto {

struct CryptoStats
{
    /// Aes128 contexts expanded from a raw key (T-table + AES-NI forms).
    base::StatCounter aesKeySchedules;
    /// HMAC inner/outer midstates derived from a raw key.
    base::StatCounter hmacKeyInits;
    /// 64-byte SHA-256 compression blocks processed (any path).
    base::StatCounter sha256Blocks;
};

/** Process-wide counters (relaxed-atomic: multicore VCPU worker
 *  threads may run crypto concurrently). */
inline CryptoStats &
cryptoStats()
{
    static CryptoStats s;
    return s;
}

/** Crypto event kinds forwarded to the trace hook. */
enum class CryptoEvent : uint8_t {
    AesKeySchedule,
    HmacKeyInit,
    Sha256Blocks,
};

/** Trace hook: installed by the running Machine, cleared on teardown. */
struct CryptoTraceHook
{
    void (*fn)(void *ctx, CryptoEvent ev, uint64_t n) = nullptr;
    void *ctx = nullptr;
};

inline CryptoTraceHook &
cryptoTraceHook()
{
    static CryptoTraceHook h;
    return h;
}

// Increment points used by the crypto implementation. Each bumps the
// process-wide counter and forwards to the trace hook if installed.

inline void
noteAesKeySchedule()
{
    ++cryptoStats().aesKeySchedules;
    CryptoTraceHook &h = cryptoTraceHook();
    if (h.fn)
        h.fn(h.ctx, CryptoEvent::AesKeySchedule, 1);
}

inline void
noteHmacKeyInit()
{
    ++cryptoStats().hmacKeyInits;
    CryptoTraceHook &h = cryptoTraceHook();
    if (h.fn)
        h.fn(h.ctx, CryptoEvent::HmacKeyInit, 1);
}

inline void
noteSha256Blocks(uint64_t nblocks)
{
    cryptoStats().sha256Blocks += nblocks;
    CryptoTraceHook &h = cryptoTraceHook();
    if (h.fn)
        h.fn(h.ctx, CryptoEvent::Sha256Blocks, nblocks);
}

} // namespace veil::crypto

#endif // VEIL_CRYPTO_STATS_HH_
