/**
 * @file
 * Host-side crypto instrumentation. These counters track expensive
 * key-derivation work (AES key schedules, HMAC ipad/opad derivation)
 * and bulk hashing so tests can pin the steady-state contract: warm
 * ENC page-out/page-in, LOG appends, and channel messages must perform
 * zero key derivation. The counters are host observability only — they
 * never charge simulated cycles (see DESIGN.md §7).
 */
#ifndef VEIL_CRYPTO_STATS_HH_
#define VEIL_CRYPTO_STATS_HH_

#include <cstdint>

namespace veil::crypto {

struct CryptoStats
{
    /// Aes128 contexts expanded from a raw key (T-table + AES-NI forms).
    uint64_t aesKeySchedules = 0;
    /// HMAC inner/outer midstates derived from a raw key.
    uint64_t hmacKeyInits = 0;
    /// 64-byte SHA-256 compression blocks processed (any path).
    uint64_t sha256Blocks = 0;
};

/** Process-wide counters (the simulator is single-threaded). */
inline CryptoStats &
cryptoStats()
{
    static CryptoStats s;
    return s;
}

} // namespace veil::crypto

#endif // VEIL_CRYPTO_STATS_HH_
