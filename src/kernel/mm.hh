/**
 * @file
 * Kernel memory management: a physical frame allocator over the
 * Dom-UNT region and per-process address spaces (4-level page tables
 * with a supervisor identity mapping of all physical memory plus
 * user mappings, Linux-style).
 */
#ifndef VEIL_KERNEL_MM_HH_
#define VEIL_KERNEL_MM_HH_

#include <map>
#include <vector>

#include "snp/paging.hh"
#include "snp/vcpu.hh"

namespace veil::kern {

/** Free-list physical frame allocator. */
class FrameAllocator
{
  public:
    FrameAllocator(snp::Gpa lo, snp::Gpa hi);

    snp::Gpa alloc();              ///< panics on exhaustion
    void free(snp::Gpa frame);
    snp::Gpa allocRange(size_t pages); ///< contiguous range
    size_t freeFrames() const;
    snp::Gpa lo() const { return lo_; }
    snp::Gpa hi() const { return hi_; }

  private:
    snp::Gpa lo_, hi_, next_;
    std::vector<snp::Gpa> freeList_;
};

/** One user mapping record (for munmap/mprotect bookkeeping). */
struct VmArea
{
    snp::Gva lo = 0;
    snp::Gva hi = 0;
    int prot = 0;
    bool enclave = false; ///< inside an enclave region (frames pinned)
};

/**
 * A process address space: cr3 + page-table tree + VMA list. The
 * supervisor identity map covers all physical memory so the kernel can
 * run on any process cr3 (RMP still arbitrates actual access).
 */
class AddressSpace
{
  public:
    AddressSpace(snp::Machine &machine, FrameAllocator &frames);
    ~AddressSpace();

    snp::Gpa cr3() const { return cr3_; }

    /** Map one user page (data page owned by this AS unless noted). */
    void mapUser(snp::Gva va, snp::Gpa pa, int prot);
    /** Unmap one user page; returns backing frame if present. */
    std::optional<snp::Gpa> unmapUser(snp::Gva va);
    void protectUser(snp::Gva va, int prot);
    std::optional<uint64_t> userLeaf(snp::Gva va) const;

    // VMA registry
    VmArea *findVma(snp::Gva va);
    void addVma(const VmArea &vma);
    void removeVma(snp::Gva lo);
    const std::map<snp::Gva, VmArea> &vmas() const { return vmas_; }

    /** Next free user VA range of @p pages (simple bump + reuse scan). */
    snp::Gva allocUserRange(size_t pages);

  private:
    void buildKernelIdentity();

    snp::Machine &machine_;
    FrameAllocator &frames_;
    snp::PageTableEditor editor_;
    snp::Gpa cr3_ = 0;
    std::vector<snp::Gpa> tableFrames_;
    std::map<snp::Gva, VmArea> vmas_;
    snp::Gva mmapCursor_;
};

} // namespace veil::kern

#endif // VEIL_KERNEL_MM_HH_
