/**
 * @file
 * Kernel memory management: a physical frame allocator over the
 * Dom-UNT region and per-process address spaces (4-level page tables
 * with a supervisor identity mapping of all physical memory plus
 * user mappings, Linux-style).
 */
#ifndef VEIL_KERNEL_MM_HH_
#define VEIL_KERNEL_MM_HH_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "base/spinlock.hh"
#include "snp/paging.hh"
#include "snp/vcpu.hh"

namespace veil::kern {

/**
 * Free-list physical frame allocator.
 *
 * Single-threaded by default: one LIFO free list plus a bump pointer,
 * bit-identical to the pre-multicore allocator. setMulticore(true)
 * shards the free list into per-thread stripes (selected by a hash of
 * the calling thread's id) with per-stripe spinlocks; the bump pointer
 * moves behind its own lock and exhausted stripes steal from others in
 * index order. Allocation *order* is then scheduling-dependent, but
 * every frame is still handed out exactly once (veil_mt_test asserts
 * disjointness under TSan).
 */
class FrameAllocator
{
  public:
    FrameAllocator(snp::Gpa lo, snp::Gpa hi);

    /** Toggle sharded locking. Call only while no other thread is
     *  using the allocator. */
    void setMulticore(bool on);

    /**
     * Recoverable allocation: std::nullopt when every free list, the
     * bump region, and (MT) every steal target are empty. Does NOT run
     * the reclaim hook — callers that can shed memory themselves (the
     * fleet evictor) use this to probe for pressure without recursing.
     */
    std::optional<snp::Gpa> tryAlloc();

    /**
     * Allocate one frame. On exhaustion, runs the reclaim hook (if
     * installed) and retries; if the hook cannot free anything the
     * allocator raises an attributed CvmHaltFault ("out of physical
     * frames") instead of asserting, so fleet workloads terminate as a
     * diagnosable halt rather than a process abort.
     */
    snp::Gpa alloc();
    void free(snp::Gpa frame);
    snp::Gpa allocRange(size_t pages); ///< contiguous range

    /**
     * Contiguous range whose base is aligned to @p align_pages frames
     * (512 for a 2 MiB huge-page backing). Comes from the bump region;
     * alignment-gap frames are returned to the free lists, not leaked.
     * std::nullopt on exhaustion — callers fall back to 4 KiB frames.
     */
    std::optional<snp::Gpa> tryAllocRange(size_t pages,
                                          size_t align_pages = 1);

    size_t freeFrames() const;
    snp::Gpa lo() const { return lo_; }
    snp::Gpa hi() const { return hi_; }

    /**
     * Memory-pressure relief valve: called (outside all allocator
     * locks) when alloc() finds no free frame. Return true if at least
     * one frame may have been freed and the allocation should be
     * retried. The hook must not call alloc()/allocRange() reentrantly
     * from the same thread.
     */
    void setReclaimHook(std::function<bool()> hook)
    {
        reclaim_ = std::move(hook);
    }

    /** Frames currently handed out (allocs minus frees). */
    uint64_t inUse() const
    {
        return inUse_.load(std::memory_order_relaxed);
    }
    /** Peak of inUse() over the allocator's lifetime. */
    uint64_t highWater() const
    {
        return highWater_.load(std::memory_order_relaxed);
    }
    /** Total frames the allocator arbitrates. */
    uint64_t totalFrames() const { return (hi_ - lo_) / snp::kPageSize; }

    /** Cross-stripe steals performed (multicore observability; the
     *  steal scan resumes at a per-thread cursor, not index 0). */
    uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    static constexpr size_t kStripes = 16;

  private:
    size_t stripeFor() const;
    snp::Gpa bumpAlloc(size_t pages);
    std::optional<snp::Gpa> tryAllocNoCount();
    void countAlloc(size_t pages);

    snp::Gpa lo_, hi_, next_;
    std::vector<snp::Gpa> freeList_;
    bool mt_ = false;
    std::function<bool()> reclaim_;
    std::atomic<uint64_t> inUse_{0};
    std::atomic<uint64_t> highWater_{0};
    std::atomic<uint64_t> steals_{0};
    mutable base::Spinlock bumpMu_;
    mutable std::array<base::Spinlock, kStripes> stripeMu_;
    std::array<std::vector<snp::Gpa>, kStripes> stripeFree_;
};

/** One user mapping record (for munmap/mprotect bookkeeping). */
struct VmArea
{
    snp::Gva lo = 0;
    snp::Gva hi = 0;
    int prot = 0;
    bool enclave = false; ///< inside an enclave region (frames pinned)
};

/**
 * A process address space: cr3 + page-table tree + VMA list. The
 * supervisor identity map covers all physical memory so the kernel can
 * run on any process cr3 (RMP still arbitrates actual access).
 */
class AddressSpace
{
  public:
    /**
     * @p kernel_map_hi / @p kernel_map_lo bound the supervisor identity
     * map: the defaults (0, first page) cover all physical memory,
     * matching the classic layout; fleet session processes pass the
     * kernel-image window instead, so a thousand address spaces don't
     * each burn ~the whole page-table budget mapping memory the session
     * never touches from CPL0.
     */
    AddressSpace(snp::Machine &machine, FrameAllocator &frames,
                 snp::Gpa kernel_map_hi = 0, snp::Gpa kernel_map_lo = 0);
    ~AddressSpace();

    snp::Gpa cr3() const { return cr3_; }

    /** Map one user page (data page owned by this AS unless noted). */
    void mapUser(snp::Gva va, snp::Gpa pa, int prot);
    /** Unmap one user page; returns backing frame if present. */
    std::optional<snp::Gpa> unmapUser(snp::Gva va);
    void protectUser(snp::Gva va, int prot);
    std::optional<uint64_t> userLeaf(snp::Gva va) const;

    // VMA registry
    VmArea *findVma(snp::Gva va);
    void addVma(const VmArea &vma);
    void removeVma(snp::Gva lo);
    const std::map<snp::Gva, VmArea> &vmas() const { return vmas_; }

    /** Next free user VA range of @p pages (simple bump + reuse scan). */
    snp::Gva allocUserRange(size_t pages);

  private:
    void buildKernelIdentity(snp::Gpa lo, snp::Gpa hi);

    snp::Machine &machine_;
    FrameAllocator &frames_;
    snp::PageTableEditor editor_;
    snp::Gpa cr3_ = 0;
    std::vector<snp::Gpa> tableFrames_;
    std::map<snp::Gva, VmArea> vmas_;
    snp::Gva mmapCursor_;
};

} // namespace veil::kern

#endif // VEIL_KERNEL_MM_HH_
