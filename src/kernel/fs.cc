#include "kernel/fs.hh"

#include "base/log.hh"

namespace veil::kern {

std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

RamFs::RamFs()
{
    Inode root;
    root.ino = kRoot;
    root.dir = true;
    inodes_[kRoot] = std::move(root);
}

Inode &
RamFs::inode(Ino ino)
{
    auto it = inodes_.find(ino);
    if (it == inodes_.end())
        panic("RamFs: dangling inode");
    return it->second;
}

const Inode &
RamFs::inode(Ino ino) const
{
    return const_cast<RamFs *>(this)->inode(ino);
}

std::optional<Ino>
RamFs::resolve(const std::string &path) const
{
    Ino cur = kRoot;
    for (const auto &part : splitPath(path)) {
        const Inode &n = inode(cur);
        if (!n.dir)
            return std::nullopt;
        auto it = n.children.find(part);
        if (it == n.children.end())
            return std::nullopt;
        cur = it->second;
    }
    return cur;
}

std::optional<std::pair<Ino, std::string>>
RamFs::resolveParent(const std::string &path) const
{
    auto parts = splitPath(path);
    if (parts.empty())
        return std::nullopt;
    std::string leaf = parts.back();
    parts.pop_back();
    Ino cur = kRoot;
    for (const auto &part : parts) {
        const Inode &n = inode(cur);
        if (!n.dir)
            return std::nullopt;
        auto it = n.children.find(part);
        if (it == n.children.end())
            return std::nullopt;
        cur = it->second;
    }
    if (!inode(cur).dir)
        return std::nullopt;
    return std::make_pair(cur, leaf);
}

std::optional<Ino>
RamFs::createFile(Ino parent, const std::string &name)
{
    Inode &p = inode(parent);
    if (!p.dir || p.children.count(name))
        return std::nullopt;
    Ino ino = next_++;
    Inode n;
    n.ino = ino;
    n.dir = false;
    inodes_[ino] = std::move(n);
    p.children[name] = ino;
    return ino;
}

std::optional<Ino>
RamFs::createDir(Ino parent, const std::string &name)
{
    Inode &p = inode(parent);
    if (!p.dir || p.children.count(name))
        return std::nullopt;
    Ino ino = next_++;
    Inode n;
    n.ino = ino;
    n.dir = true;
    inodes_[ino] = std::move(n);
    p.children[name] = ino;
    return ino;
}

bool
RamFs::remove(Ino parent, const std::string &name)
{
    Inode &p = inode(parent);
    auto it = p.children.find(name);
    if (it == p.children.end())
        return false;
    Inode &victim = inode(it->second);
    if (victim.dir && !victim.children.empty())
        return false;
    inodes_.erase(it->second);
    p.children.erase(it);
    return true;
}

bool
RamFs::rename(Ino old_parent, const std::string &old_name, Ino new_parent,
              const std::string &new_name)
{
    Inode &op = inode(old_parent);
    auto it = op.children.find(old_name);
    if (it == op.children.end())
        return false;
    Ino victim = it->second;
    Inode &np = inode(new_parent);
    if (!np.dir)
        return false;
    // POSIX rename silently replaces an existing (non-directory) target.
    auto existing = np.children.find(new_name);
    if (existing != np.children.end()) {
        if (inode(existing->second).dir)
            return false;
        inodes_.erase(existing->second);
        np.children.erase(existing);
    }
    op.children.erase(old_name);
    np.children[new_name] = victim;
    return true;
}

} // namespace veil::kern
