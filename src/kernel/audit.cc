#include "kernel/audit.hh"

#include "base/log.hh"
#include "kernel/uapi.hh"

namespace veil::kern {

std::set<uint32_t>
priorWorkAuditRuleset()
{
    // The paper's CS3 footnote lists read/write/send/recv/mmap/
    // mprotect/open/close/creat/rename/unlink/socket-family calls etc.;
    // this is the intersection with the syscalls our kernel implements.
    return {
        kSysRead,   kSysWrite,  kSysSendto, kSysRecvfrom, kSysMmap,
        kSysMprotect, kSysOpen, kSysClose,  kSysCreat,    kSysRename,
        kSysUnlink, kSysSocket, kSysBind,   kSysAccept,   kSysConnect,
        kSysFtruncate,
    };
}

std::string
AuditSubsystem::format(int pid, const std::string &comm, uint32_t sysno,
                       const uint64_t args[6], uint64_t tsc,
                       uint64_t seq) const
{
    // Mirrors Linux audit SYSCALL record structure (fields the paper's
    // forensic analyses rely on: timestamp, syscall, args, process).
    return strfmt("type=SYSCALL msg=audit(%llu.%03llu:%llu): arch=c000003e "
                  "syscall=%u a0=%llx a1=%llx a2=%llx a3=%llx pid=%d "
                  "comm=\"%s\"",
                  (unsigned long long)(tsc / 2'400'000'000ULL),
                  (unsigned long long)((tsc / 2'400'000ULL) % 1000),
                  (unsigned long long)seq, sysno,
                  (unsigned long long)args[0], (unsigned long long)args[1],
                  (unsigned long long)args[2], (unsigned long long)args[3],
                  pid, comm.c_str());
}

void
AuditSubsystem::kauditAppend(std::string record)
{
    buffer_.push_back(std::move(record));
    // Bounded like a real in-memory backlog; oldest entries rotate out.
    if (buffer_.size() > 200000)
        buffer_.erase(buffer_.begin(), buffer_.begin() + 100000);
}

} // namespace veil::kern
