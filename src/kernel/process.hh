/**
 * @file
 * Process model of the mini kernel: an address space, a file-descriptor
 * table, and optional enclave state installed by the Veil enclave
 * driver (§7's ~700-line kernel module).
 */
#ifndef VEIL_KERNEL_PROCESS_HH_
#define VEIL_KERNEL_PROCESS_HH_

#include <memory>
#include <optional>

#include "kernel/fs.hh"
#include "kernel/mm.hh"
#include "kernel/net.hh"

namespace veil::kern {

/** One file-descriptor slot. */
struct FdEntry
{
    enum class Type : uint8_t { Free, File, Socket, Console };
    Type type = Type::Free;
    Ino ino = 0;
    uint64_t offset = 0;
    int flags = 0;
    SockId sock = -1;
};

/** Kernel-side enclave bookkeeping for one process. */
struct EnclaveState
{
    uint64_t id = 0;
    snp::VmsaId vmsa = snp::kInvalidVmsa;
    snp::Gpa ghcbGpa = 0;
    snp::Gva ghcbGva = 0;
    snp::Gva ocallGva = 0;
    snp::Gva lo = 0, hi = 0;
    bool alive = false;
    /// Nonzero when this enclave is a CoW clone: faults on shared
    /// template pages are resolved via EncCloneFault (§13).
    uint64_t snapshotId = 0;
    /// "Disk" swap store for evicted (encrypted) enclave pages; the OS
    /// tracks which page belongs to which enclave VA, like SGX (§6.2).
    std::map<snp::Gva, Bytes> swapStore;
    /// Resident private pages (VA -> CLOCK referenced flag) for the
    /// fleet evictor: set on fault-in, cleared by the sweep hand. Pure
    /// OS bookkeeping — maintained host-side, costs no guest cycles.
    std::map<snp::Gva, uint8_t> resident;
};

/** A process. */
struct Process
{
    int pid = 0;
    std::string comm;
    std::unique_ptr<AddressSpace> as;
    std::vector<FdEntry> fds;
    std::optional<EnclaveState> enclave;
    uint64_t syscalls = 0;
    /// Auditing applies to this process (benchmark load drivers that
    /// the paper runs outside the audited system set this false).
    bool audited = true;

    /** Allocate the lowest free fd slot. */
    int
    allocFd()
    {
        for (size_t i = 0; i < fds.size(); ++i) {
            if (fds[i].type == FdEntry::Type::Free)
                return static_cast<int>(i);
        }
        if (fds.size() >= 1024)
            return -1;
        fds.emplace_back();
        return static_cast<int>(fds.size() - 1);
    }

    FdEntry *
    fd(int n)
    {
        if (n < 0 || static_cast<size_t>(n) >= fds.size() ||
            fds[n].type == FdEntry::Type::Free) {
            return nullptr;
        }
        return &fds[n];
    }
};

} // namespace veil::kern

#endif // VEIL_KERNEL_PROCESS_HH_
