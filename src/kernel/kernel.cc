#include "kernel/kernel.hh"

#include <cstddef>
#include <cstring>

#include "base/log.hh"
#include "base/rng.hh"
#include "snp/fault.hh"
#include "veil/services/enc.hh" // kUserVaLo/Hi
#include "veil/services/kci.hh" // KciSymbolEntry

namespace veil::kern {

using namespace snp;
using core::IdcbMessage;
using core::VeilOp;
using core::VeilStatus;
using core::vkoParse;
using core::vkoVerify;

namespace {

constexpr uint64_t kSyscallEntryCycles = 350;
constexpr uint64_t kAuditFormatCycles = 1400;
constexpr uint64_t kKauditAppendCycles = 600;
/// Marshalling one VeilOp into its submission-ring slot (§11).
constexpr uint64_t kOpAppendCycles = 600;
constexpr uint64_t kPageZeroCycles = 550;
constexpr uint64_t kPageUnmapCycles = 900;
/// Common load_module()/free_module() machinery (ELF parsing, kallsyms
/// resolution, sysfs registration, stop_machine on unload) modelled
/// after Linux: the paper's +55k-cycle KCI delta is 5.7% / 4.2% of
/// these baselines (§9.2 CS1).
constexpr uint64_t kModuleLoadKernelWork = 950'000;
constexpr uint64_t kModuleUnloadKernelWork = 1'150'000;
constexpr size_t kKernelTextPages = 32;
constexpr size_t kKernelDataPages = 64;

bool
okStatus(const IdcbMessage &m)
{
    return m.status == static_cast<uint64_t>(VeilStatus::Ok);
}

} // namespace

Kernel::Kernel(Machine &machine, const core::CvmLayout &layout,
               KernelConfig config)
    : machine_(machine), layout_(layout), config_(std::move(config))
{
    audit_.setBackend(config_.auditBackend);
    audit_.setRules(config_.auditRules);
    auditRings_.resize(layout_.numVcpus);
    opRings_.resize(layout_.numVcpus);
    deferredFreePages_.resize(layout_.numVcpus);
    scheduledEnclaveVmsa_.assign(layout_.numVcpus, snp::kInvalidVmsa);
    inEnclaveSession_.assign(layout_.numVcpus, 0);
    idcbBusy_.assign(layout_.numVcpus, 0);
}

Kernel::~Kernel() = default;

namespace {
/// Fleet worker binding: kernel entry points called on an AP's host
/// thread resolve to that AP's VCPU, not the BSP's.
thread_local Vcpu *t_workerCpu = nullptr;
} // namespace

void
Kernel::bindWorkerCpu(Vcpu *cpu)
{
    t_workerCpu = cpu;
}

Vcpu *
Kernel::curCpu() const
{
    return t_workerCpu ? t_workerCpu : cpu_;
}

Vcpu &
Kernel::cpu()
{
    Vcpu *c = curCpu();
    ensure(c != nullptr, "Kernel: not booted");
    return *c;
}

void
Kernel::conAppend(const std::string &s)
{
    if (!machine_.multicore()) {
        console_ += s;
        return;
    }
    kernMu_.lock();
    console_ += s;
    kernMu_.unlock();
}

GuestEntry
Kernel::bspEntry()
{
    return [this](Vcpu &cpu) { bspMain(cpu); };
}

GuestEntry
Kernel::apEntry(uint32_t vcpu)
{
    return [this, vcpu](Vcpu &cpu) {
        // AP bring-up handshake: per-CPU areas + online marker, then
        // the AP parks — unless a fleet worker body is installed, in
        // which case the AP becomes a session worker (§13).
        cpu.burn(50'000);
        if (machine_.multicore()) {
            kernMu_.lock();
            onlineVcpus_.insert(vcpu);
            kernMu_.unlock();
        } else {
            onlineVcpus_.insert(vcpu);
        }
        if (workerMain_) {
            bindWorkerCpu(&cpu);
            workerMain_(*this, cpu, vcpu);
            bindWorkerCpu(nullptr);
        }
    };
}

void
Kernel::validateAllMemoryNative(Vcpu &cpu)
{
    RmpTable &rmp = machine_.rmp();
    const bool huge = machine_.hugePagesEnabled();
    const bool lazy = config_.lazyAccept;

    // Eligible for the 2 MiB fast path: whole region inside memory, no
    // shared/VMSA/validated page, and uniformly assigned — or, under
    // lazy acceptance, uniformly unassigned (accepted below).
    auto region2m = [&](Gpa base, bool &unassigned) {
        if (!isPageAligned2m(base) || base + kPageSize2m > layout_.memEnd)
            return false;
        bool any_assigned = false, all_assigned = true;
        for (Gpa q = base; q < base + kPageSize2m; q += kPageSize) {
            if (rmp.isShared(q) || rmp.isVmsaPage(q) || rmp.isValidated(q))
                return false;
            if (rmp.isAssigned(q))
                any_assigned = true;
            else
                all_assigned = false;
        }
        if (all_assigned) {
            unassigned = false;
            return true;
        }
        unassigned = true;
        return lazy && !any_assigned;
    };

    // GHCB PSC buffer capacity (entries per grouped request).
    constexpr uint64_t kPscMaxEntries = 253;

    Gpa p = 0;
    while (p < layout_.memEnd) {
        bool unassigned = false;
        if (huge && region2m(p, unassigned)) {
            if (unassigned) {
                // Grouped acceptance: one PageStateChange request covers
                // a run of consecutive unassigned 2 MiB regions.
                uint64_t count = 0;
                Gpa q = p;
                bool run_unassigned = true;
                while (count < kPscMaxEntries && run_unassigned &&
                       region2m(q, run_unassigned) && run_unassigned) {
                    ++count;
                    q += kPageSize2m;
                }
                Ghcb g;
                g.exitCode =
                    static_cast<uint64_t>(GhcbExit::PageStateChange);
                g.info[0] = p;
                g.info[1] = 0; // to private (acceptance)
                g.info[2] = count;
                g.info[3] = 1; // 2 MiB entries
                cpu.hypercall(g);
                for (uint64_t i = 0; i < count; ++i)
                    cpu.pvalidate2m(p + Gpa(i) * kPageSize2m, true);
                p += Gpa(count) * kPageSize2m;
                continue;
            }
            cpu.pvalidate2m(p, true);
            p += kPageSize2m;
            continue;
        }
        if (rmp.isShared(p) || rmp.isValidated(p) || rmp.isVmsaPage(p)) {
            p += kPageSize;
            continue;
        }
        if (lazy && !rmp.isAssigned(p)) {
            // 4 KiB acceptance: one round trip per page (the ablation
            // baseline the grouped huge path amortizes).
            Ghcb g;
            g.exitCode = static_cast<uint64_t>(GhcbExit::PageStateChange);
            g.info[0] = p;
            g.info[1] = 0;
            cpu.hypercall(g);
        }
        cpu.pvalidate(p, true);
        p += kPageSize;
    }
}

void
Kernel::bspMain(Vcpu &cpu)
{
    cpu_ = &cpu;
    onlineVcpus_.insert(cpu.vcpuId());

    if (!config_.veilEnabled) {
        // Native CVM: the kernel boots at VMPL-0 and validates its own
        // memory (the baseline boot cost, §9.1).
        validateAllMemoryNative(cpu);
    }

    // Kernel image layout at the base of Dom-UNT memory.
    textLo_ = layout_.kernelBase;
    textHi_ = textLo_ + kKernelTextPages * kPageSize;
    dataLo_ = textHi_;
    dataHi_ = dataLo_ + kKernelDataPages * kPageSize;
    // The audit and VeilOp rings at the top of memory are reserved
    // kernel state, never handed out as frames. The allocator is
    // bottom-up, so lowering its ceiling leaves every address it hands
    // out unchanged.
    frames_ = std::make_unique<FrameAllocator>(dataHi_, layout_.opRingBase);

    // "Load" the kernel text (deterministic synthetic code bytes).
    Rng rng(0x6b65726eULL);
    Bytes text = rng.bytes(kKernelTextPages * kPageSize);
    machine_.memory().write(textLo_, text.data(), text.size());

    // Exported symbols for module relocation (protected table, §6.1).
    kernelSymbols_ = {
        {"printk", textLo_ + 0x200},
        {"kmalloc", textLo_ + 0x340},
        {"kfree", textLo_ + 0x380},
        {"audit_log_end", textLo_ + 0x400},
        {"register_chrdev", textLo_ + 0x500},
    };

    // Install the interrupt handler (LIDT analogue).
    idtHandlerVa_ = textLo_ + 0x100;
    cpu.vmsa().idtHandlerVa = idtHandlerVa_;
    if (audit_.backend() == AuditBackend::VeilLogBatched ||
        (config_.veilEnabled && config_.serviceBatching)) {
        // Timer-tick tail of the interrupt handler: flush the audit or
        // VeilOp ring if the oldest queued entry has passed its
        // deadline. Each check self-gates on its own mode and pending
        // count, so sharing the hook costs the other mode nothing.
        cpu.vmsa().softTimerHook = [this] {
            auditMaybeDeadlineFlush();
            opMaybeDeadlineFlush();
        };
    }

    if (config_.veilEnabled && config_.activateKci) {
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::KciActivate);
        m.args[0] = textLo_;
        m.args[1] = textHi_;
        m.args[2] = dataLo_;
        m.args[3] = dataHi_;
        size_t off = 0;
        for (const auto &[name, addr] : kernelSymbols_) {
            core::KciSymbolEntry e{};
            std::memcpy(e.name, name.data(),
                        std::min(name.size(), sizeof(e.name) - 1));
            e.addr = addr;
            std::memcpy(m.payload + off, &e, sizeof(e));
            off += sizeof(e);
        }
        m.payloadLen = static_cast<uint32_t>(off);
        callService(m);
        ensure(okStatus(m), "Kernel: KCI activation failed");
    }

    booted_ = true;
    conAppend("[kernel] boot complete\n");

    Process &init = makeProcess("init");
    if (init_)
        init_(*this, init);
    terminate(0);
}

Process &
Kernel::makeProcess(const std::string &comm, bool light_as)
{
    auto proc = std::make_unique<Process>();
    proc->pid = nextPid_++;
    proc->comm = comm;
    proc->as = light_as ? std::make_unique<AddressSpace>(machine_, *frames_,
                                                         dataHi_, textLo_)
                        : std::make_unique<AddressSpace>(machine_, *frames_);
    // fds 0/1/2: console.
    for (int i = 0; i < 3; ++i) {
        FdEntry e;
        e.type = FdEntry::Type::Console;
        proc->fds.push_back(e);
    }
    processes_.push_back(std::move(proc));
    return *processes_.back();
}

void
Kernel::reapProcess(Process &proc)
{
    ensure(!proc.enclave || !proc.enclave->alive,
           "reapProcess: enclave still alive");
    // Deferred EncFreePage completions hold a Process pointer; drain
    // them before the process (and its address space) goes away.
    opRingBarrier();
    // Remaining user data frames (the ocall block, plain mmaps — the
    // enclave driver already reclaimed its own).
    for (const auto &[lo, vma] : proc.as->vmas()) {
        for (Gva va = vma.lo; va < vma.hi; va += kPageSize) {
            if (auto pa = proc.as->unmapUser(va))
                frames_->free(*pa);
        }
    }
    for (auto it = processes_.begin(); it != processes_.end(); ++it) {
        if (it->get() == &proc) {
            processes_.erase(it); // ~AddressSpace frees the PT tree
            return;
        }
    }
    ensure(false, "reapProcess: unknown process");
}

void
Kernel::terminate(uint64_t status)
{
    // Drain barriers: no audited event or deferred VeilOp may be lost
    // across an orderly shutdown (bounds the group-commit loss window
    // to crashes).
    if (audit_.backend() == AuditBackend::VeilLogBatched)
        auditRingFlush(AuditFlushTrigger::Barrier);
    opRingBarrier();
    Vcpu &c = cpu();
    c.vmsa().ghcbGpa = layout_.osGhcb(c.vcpuId());
    Ghcb g;
    g.exitCode = static_cast<uint64_t>(GhcbExit::Terminate);
    g.info[0] = status;
    // Sentinel-armed hypercall: a swallowed Terminate relay would leave
    // the CVM neither terminated nor halted; the retry path re-issues
    // it until the hypervisor acts or the halt is attributed.
    c.hypercall(g);
}

// ---- Delegation (§5.3) ----

void
Kernel::callMonitor(IdcbMessage &msg)
{
    // Drain barrier: a sync monitor call must not overtake VeilOps
    // already queued in the submission ring (program order = service
    // order; a queued PageStateChange and a sync one on the same page
    // must land in submission order).
    if (config_.veilEnabled && config_.serviceBatching &&
        curCpu() != nullptr &&
        opRings_[curCpu()->vcpuId()].pending > 0 && auditFlushAllowed()) {
        opRingFlush(OpFlushTrigger::Barrier);
    }
    ++stats_.monitorCalls;
    if (msg.op < core::kVeilOpCount)
        ++stats_.veilOpCalls[msg.op];
    Vcpu &c = cpu();
    Gpa saved_ghcb = c.vmsa().ghcbGpa;
    Cpl saved_cpl = c.cpl();
    uint8_t saved_busy = idcbBusy_[c.vcpuId()];
    idcbBusy_[c.vcpuId()] = 1;
    c.vmsa().ghcbGpa = layout_.osGhcb(c.vcpuId());
    c.setCpl(Cpl::Supervisor);
    core::idcbCall(c, layout_.osMonIdcb(c.vcpuId()), Vmpl::Vmpl0, msg);
    c.vmsa().ghcbGpa = saved_ghcb;
    c.setCpl(saved_cpl);
    idcbBusy_[c.vcpuId()] = saved_busy;
}

void
Kernel::callService(IdcbMessage &msg)
{
    // Drain barrier: a sync service call must not overtake VeilOps
    // already queued in the submission ring (program order = service
    // order). The doorbell itself is exempt — it *is* the drain.
    bool doorbell = msg.op == static_cast<uint32_t>(VeilOp::OpRingDoorbell);
    if (!doorbell && config_.veilEnabled && config_.serviceBatching &&
        curCpu() != nullptr && opRings_[curCpu()->vcpuId()].pending > 0 &&
        auditFlushAllowed()) {
        opRingFlush(OpFlushTrigger::Barrier);
    }
    // Drain barrier: a LogQuery reply must reflect every record the
    // kernel has produced so far, including those still in the ring.
    if (msg.op == static_cast<uint32_t>(VeilOp::LogQuery) &&
        audit_.backend() == AuditBackend::VeilLogBatched) {
        auditRingFlush(AuditFlushTrigger::Barrier);
    }
    ++stats_.serviceCalls;
    if (msg.op < core::kVeilOpCount)
        ++stats_.veilOpCalls[msg.op];
    Vcpu &c = cpu();
    Gpa saved_ghcb = c.vmsa().ghcbGpa;
    Cpl saved_cpl = c.cpl();
    uint8_t saved_busy = idcbBusy_[c.vcpuId()];
    idcbBusy_[c.vcpuId()] = 1;
    c.vmsa().ghcbGpa = layout_.osGhcb(c.vcpuId());
    c.setCpl(Cpl::Supervisor);
    core::idcbCall(c, layout_.osSrvIdcb(c.vcpuId()), Vmpl::Vmpl1, msg,
                   doorbell ? core::kSwitchHintDoorbell : 0);
    c.vmsa().ghcbGpa = saved_ghcb;
    c.setCpl(saved_cpl);
    idcbBusy_[c.vcpuId()] = saved_busy;
}

void
Kernel::callServiceBatched(IdcbMessage &msg)
{
    if (opSubmit(msg)) {
        // Fire-and-forget: the real status arrives with the completion
        // (a failed deferred op is attributed at harvest).
        msg.status = static_cast<uint64_t>(VeilStatus::Ok);
        return;
    }
    if (config_.veilEnabled && config_.serviceBatching &&
        opDeferrable(msg.op)) {
        ++stats_.opSyncFallbacks;
    }
    if (msg.op == static_cast<uint32_t>(VeilOp::PageStateChange))
        callMonitor(msg);
    else
        callService(msg);
}

bool
Kernel::bootVcpu(uint32_t vcpu)
{
    if (!config_.veilEnabled)
        return false; // native AP boot not modelled
    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::BootVcpu);
    m.args[0] = vcpu;
    callMonitor(m);
    return okStatus(m);
}

void
Kernel::pageStateChange(Gpa page, bool shared)
{
    if (config_.veilEnabled) {
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::PageStateChange);
        m.args[0] = page;
        m.args[1] = shared ? 1 : 0;
        callMonitor(m);
        ensure(okStatus(m), "Kernel: PSC delegation failed");
        return;
    }
    // Native: the VMPL-0 kernel performs PVALIDATE + PSC itself.
    Vcpu &c = cpu();
    Ghcb g;
    g.exitCode = static_cast<uint64_t>(GhcbExit::PageStateChange);
    g.info[0] = page;
    g.info[1] = shared ? 1 : 0;
    if (shared) {
        if (machine_.rmp().isValidated(page))
            c.pvalidate(page, false);
        c.hypercall(g);
    } else {
        c.hypercall(g);
        c.pvalidate(page, true);
    }
}

void
Kernel::pageStateChangeAsync(Gpa page, bool shared)
{
    if (!config_.veilEnabled) {
        pageStateChange(page, shared);
        return;
    }
    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::PageStateChange);
    m.args[0] = page;
    m.args[1] = shared ? 1 : 0;
    if (opSubmit(m))
        return; // refusal surfaces at the flush via opCompletionArrived
    callMonitor(m);
    ensure(okStatus(m), "Kernel: PSC delegation failed");
}

// ---- Modules (§6.1) ----

int64_t
Kernel::loadModule(const Bytes &image)
{
    Vcpu &c = cpu();
    c.burn(kModuleLoadKernelWork);

    auto parsed = vkoParse(image);
    if (!parsed)
        return -kEINVAL;
    uint32_t dest_pages = static_cast<uint32_t>(
        pageAlignUp(parsed->installedSize()) / kPageSize);
    if (dest_pages == 0)
        dest_pages = 1;
    Gpa dest = frames_->allocRange(dest_pages);

    Module mod;
    mod.dest = dest;
    mod.destPages = dest_pages;

    bool use_kci = config_.veilEnabled && config_.activateKci;
    if (use_kci) {
        // Stage the image in kernel memory for VeilS-KCI.
        uint32_t img_pages =
            static_cast<uint32_t>(pageAlignUp(image.size()) / kPageSize);
        Gpa img = frames_->allocRange(img_pages);
        c.writePhys(img, image.data(), image.size());

        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::KciModuleLoad);
        m.args[0] = img;
        m.args[1] = image.size();
        m.args[2] = dest;
        m.args[3] = dest_pages;
        callService(m);
        for (uint32_t i = 0; i < img_pages; ++i)
            frames_->free(img + Gpa(i) * kPageSize);
        if (!okStatus(m))
            return -kEACCES;
        mod.kciHandle = m.ret[0];
        mod.entry = m.ret[1];
    } else {
        // Native path: kernel-side verification (TOCTOU-exposed, §6.1).
        if (!vkoVerify(image, config_.moduleKey))
            return -kEACCES;
        Bytes text = parsed->text;
        for (const auto &r : parsed->relocs) {
            auto it = kernelSymbols_.find(parsed->symbols[r.symIndex]);
            if (it == kernelSymbols_.end())
                return -kEINVAL;
            uint64_t addr = it->second;
            std::memcpy(text.data() + r.offset, &addr, sizeof(addr));
        }
        c.writePhys(dest, text.data(), text.size());
        if (!parsed->data.empty()) {
            c.writePhys(dest + pageAlignUp(text.size()), parsed->data.data(),
                        parsed->data.size());
        }
        c.burn(1200); // set_memory_ro analogue (PT-based only)
        mod.entry = dest + parsed->header.entryOffset;
    }

    int64_t handle = nextModule_++;
    modules_[handle] = mod;
    ++stats_.modulesLoaded;
    return handle;
}

int64_t
Kernel::unloadModule(int64_t handle)
{
    auto it = modules_.find(handle);
    if (it == modules_.end())
        return -kENOENT;
    Vcpu &c = cpu();
    c.burn(kModuleUnloadKernelWork);
    if (it->second.kciHandle != 0) {
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::KciModuleUnload);
        m.args[0] = it->second.kciHandle;
        callService(m);
        if (!okStatus(m))
            return -kEACCES;
    }
    for (uint32_t i = 0; i < it->second.destPages; ++i)
        frames_->free(it->second.dest + Gpa(i) * kPageSize);
    modules_.erase(it);
    return 0;
}

int64_t
Kernel::invokeModule(int64_t handle)
{
    auto it = modules_.find(handle);
    if (it == modules_.end())
        return -kENOENT;
    Vcpu &c = cpu();
    // Instruction fetch from the module's text (RMP-exec-checked).
    c.checkExec(it->second.entry);
    c.burn(2000);
    conAppend(strfmt("[module %lld] hello from module\n",
                     (long long)handle));
    return 0;
}

Gva
Kernel::moduleEntry(int64_t handle) const
{
    auto it = modules_.find(handle);
    return it == modules_.end() ? 0 : it->second.entry;
}

Gpa
Kernel::moduleText(int64_t handle) const
{
    auto it = modules_.find(handle);
    return it == modules_.end() ? 0 : it->second.dest;
}

// ---- Enclave driver (§6.2) ----

int64_t
Kernel::enclaveCreate(Process &proc, VeilEnclaveCreateArgs &args)
{
    if (!config_.veilEnabled || proc.enclave)
        return -kEPERM;
    if (!isPageAligned(args.vaLo) || !isPageAligned(args.vaHi) ||
        args.vaLo >= args.vaHi || !isPageAligned(args.ghcbGva) ||
        !isPageAligned(args.ocallGva)) {
        return -kEINVAL;
    }

    Vcpu &c = cpu();
    // Per-thread GHCB: fresh frame, made hypervisor-shared via VeilMon,
    // mapped into the process address space (§6.2).
    Gpa ghcb_frame = frames_->alloc();
    pageStateChange(ghcb_frame, /*shared=*/true);
    proc.as->mapUser(args.ghcbGva, ghcb_frame, kPROT_READ | kPROT_WRITE);

    // Instruct the hypervisor to only allow UNT<->ENC switches on it.
    {
        Gpa saved = c.vmsa().ghcbGpa;
        c.vmsa().ghcbGpa = layout_.osGhcb(c.vcpuId());
        Ghcb g;
        g.exitCode = static_cast<uint64_t>(GhcbExit::RestrictGhcb);
        g.info[0] = ghcb_frame;
        c.hypercall(g);
        c.vmsa().ghcbGpa = saved;
    }

    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::EncCreate);
    m.args[0] = proc.as->cr3();
    m.args[1] = args.vaLo;
    m.args[2] = args.vaHi;
    m.args[3] = ghcb_frame;
    m.args[4] = c.vcpuId();
    m.args[5] = args.programId;
    m.args[6] = args.ocallGva;
    m.args[7] = idtHandlerVa_;
    callService(m);
    if (!okStatus(m)) {
        proc.as->unmapUser(args.ghcbGva);
        pageStateChange(ghcb_frame, /*shared=*/false);
        frames_->free(ghcb_frame);
        return -kEACCES;
    }

    // Creating the Dom-ENC VMSA re-pointed the hypervisor's
    // (vcpu, Vmpl2) slot at the new VMSA (VeilMon registers it), so the
    // scheduler cache no longer matches the registry. Invalidate it:
    // the next prepEnclaveRun re-registers whichever enclave actually
    // gets the VCPU, instead of switching into the stale slot.
    scheduledEnclaveVmsa_[c.vcpuId()] = kInvalidVmsa;

    EnclaveState st;
    st.id = m.ret[0];
    st.vmsa = static_cast<VmsaId>(m.ret[1]);
    st.ghcbGpa = ghcb_frame;
    st.ghcbGva = args.ghcbGva;
    st.ocallGva = args.ocallGva;
    st.lo = args.vaLo;
    st.hi = args.vaHi;
    st.alive = true;
    proc.enclave = st;

    for (auto &[lo, vma] : proc.as->vmas()) {
        if (vma.lo >= args.vaLo && vma.hi <= args.vaHi)
            const_cast<VmArea &>(vma).enclave = true;
    }

    args.enclaveId = st.id;
    args.vmsaId = st.vmsa;
    return 0;
}

int64_t
Kernel::enclaveDestroy(Process &proc)
{
    if (!proc.enclave || !proc.enclave->alive)
        return -kENOENT;
    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::EncDestroy);
    m.args[0] = proc.enclave->id;
    callService(m);
    if (!okStatus(m))
        return -kEACCES;
    EnclaveState &st = *proc.enclave;
    st.alive = false;
    for (auto &[lo, vma] : proc.as->vmas())
        const_cast<VmArea &>(vma).enclave = false;
    if (st.snapshotId != 0) {
        // Fleet sessions recycle by the thousand: reclaim the OS-side
        // frames (private CoW copies — VeilS-ENC just scrubbed them —
        // and the GHCB) so the fleet's frame budget is a steady state.
        // Classic enclaves keep the historical leak-on-exit behaviour
        // so their cycle-pinned teardown paths stay untouched.
        for (const auto &[va, ref] : st.resident) {
            if (auto leaf = proc.as->userLeaf(va)) {
                proc.as->unmapUser(va);
                frames_->free(*leaf & kPteAddrMask);
            }
        }
        st.resident.clear();
        st.swapStore.clear();
        proc.as->unmapUser(st.ghcbGva);
        pageStateChange(st.ghcbGpa, /*shared=*/false);
        frames_->free(st.ghcbGpa);
    }
    return 0;
}

int64_t
Kernel::enclaveSnapshot(Process &proc, VeilSnapshotArgs &args)
{
    if (!config_.veilEnabled || !proc.enclave || !proc.enclave->alive)
        return -kENOENT;
    EnclaveState &st = *proc.enclave;
    if (st.snapshotId != 0)
        return -kEPERM; // clones and sealed sources cannot re-seal
    if (!st.swapStore.empty())
        return -kEAGAIN; // restore evicted pages before sealing
    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::EncSnapshot);
    m.args[0] = st.id;
    callService(m);
    if (!okStatus(m))
        return -kEACCES;
    // The source is now itself a CoW sharer of the sealed image: its
    // next write to an image page takes the EncCloneFault path.
    st.snapshotId = m.ret[0];
    args.snapshotId = m.ret[0];
    args.pages = m.ret[1];
    return 0;
}

int64_t
Kernel::enclaveClone(Process &proc, VeilCloneArgs &args)
{
    if (!config_.veilEnabled || proc.enclave)
        return -kEPERM;
    if (!isPageAligned(args.ghcbGva) || args.snapshotId == 0)
        return -kEINVAL;

    Vcpu &c = cpu();
    // Same GHCB plumbing as enclaveCreate: fresh frame, shared via
    // VeilMon, mapped into the clone process, switch-restricted.
    Gpa ghcb_frame = frames_->alloc();
    pageStateChange(ghcb_frame, /*shared=*/true);
    proc.as->mapUser(args.ghcbGva, ghcb_frame, kPROT_READ | kPROT_WRITE);
    {
        Gpa saved = c.vmsa().ghcbGpa;
        c.vmsa().ghcbGpa = layout_.osGhcb(c.vcpuId());
        Ghcb g;
        g.exitCode = static_cast<uint64_t>(GhcbExit::RestrictGhcb);
        g.info[0] = ghcb_frame;
        c.hypercall(g);
        c.vmsa().ghcbGpa = saved;
    }

    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::EncClone);
    m.args[0] = args.snapshotId;
    m.args[1] = proc.as->cr3();
    m.args[2] = ghcb_frame;
    m.args[3] = c.vcpuId();
    callService(m);
    if (!okStatus(m)) {
        proc.as->unmapUser(args.ghcbGva);
        pageStateChange(ghcb_frame, /*shared=*/false);
        frames_->free(ghcb_frame);
        return -kEACCES;
    }

    // Same registry/cache coherence rule as enclaveCreate: the clone's
    // fresh VMSA now owns the hypervisor's (vcpu, Vmpl2) slot.
    scheduledEnclaveVmsa_[c.vcpuId()] = kInvalidVmsa;

    EnclaveState st;
    st.id = m.ret[0];
    st.vmsa = static_cast<VmsaId>(m.ret[1]);
    st.lo = m.ret[2];
    st.hi = m.ret[3];
    st.ghcbGpa = ghcb_frame;
    st.ghcbGva = args.ghcbGva;
    st.alive = true;
    st.snapshotId = args.snapshotId;
    proc.enclave = st;

    args.vaLo = st.lo;
    args.vaHi = st.hi;
    args.enclaveId = st.id;
    args.vmsaId = st.vmsa;
    return 0;
}

int64_t
Kernel::enclaveSnapshotRelease(uint64_t snapshot_id)
{
    if (!config_.veilEnabled || snapshot_id == 0)
        return -kEINVAL;
    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::EncSnapshotRelease);
    m.args[0] = snapshot_id;
    callService(m);
    return okStatus(m) ? 0 : -kENOENT;
}

int64_t
Kernel::enclaveFreePage(Process &proc, Gva va)
{
    if (!proc.enclave || !proc.enclave->alive)
        return -kENOENT;
    auto leaf = proc.as->userLeaf(va);
    if (!leaf)
        return -kENOENT;
    Gpa pa = *leaf & kPteAddrMask;

    IdcbMessage m;
    m.op = static_cast<uint32_t>(VeilOp::EncFreePage);
    m.args[0] = proc.enclave->id;
    m.args[1] = va;

    // Batched mode: queue the op and defer the swap-out until the
    // completion arrives — VeilS-ENC seals the frame in place, so the
    // frame (and the VA mapping) must stay untouched until then.
    uint32_t seq = 0;
    if (opSubmit(m, &seq)) {
        deferredFreePages_[cpu().vcpuId()].push_back({seq, &proc, va, pa});
        return 0;
    }
    if (config_.veilEnabled && config_.serviceBatching)
        ++stats_.opSyncFallbacks;

    callService(m);
    if (!okStatus(m))
        return -kEACCES;

    // "Swap out" the (now encrypted) page contents, then reuse the
    // frame. The OS tracks which page backs which enclave VA (§6.2).
    Bytes swapped(kPageSize);
    cpu().readPhys(pa, swapped.data(), swapped.size());
    proc.enclave->swapStore[va] = std::move(swapped);
    proc.as->unmapUser(va);
    proc.enclave->resident.erase(va);
    frames_->free(pa);
    return 0;
}

int64_t
Kernel::enclaveHandleFault(Process &proc, Gva va)
{
    if (!proc.enclave || !proc.enclave->alive)
        return -kENOENT;
    ++stats_.enclaveFaults;
    va = pageAlignDown(va);
    EnclaveState &st = *proc.enclave;

    // The fault handler runs in ring 0 (trap entry).
    Vcpu &c = cpu();
    Cpl saved_cpl = c.cpl();
    c.setCpl(Cpl::Supervisor);
    struct CplRestore
    {
        Vcpu &c;
        Cpl saved;
        ~CplRestore() { c.setCpl(saved); }
    } restore{c, saved_cpl};

    auto swap_it = st.swapStore.find(va);
    if (swap_it != st.swapStore.end()) {
        // Demand paging: fetch from "disk", let VeilS-ENC verify+remap.
        Gpa frame = frames_->alloc();
        cpu().writePhys(frame, swap_it->second.data(),
                        swap_it->second.size());
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::EncRestorePage);
        m.args[0] = st.id;
        m.args[1] = va;
        m.args[2] = frame;
        callService(m);
        if (!okStatus(m)) {
            frames_->free(frame);
            return -kEACCES;
        }
        proc.as->mapUser(va, frame, kPROT_READ | kPROT_WRITE);
        st.swapStore.erase(swap_it);
        st.resident[va] = 1;
        return 0;
    }

    // Lazily-synchronized non-enclave mapping (e.g. fresh mmap).
    if (va < st.lo || va >= st.hi) {
        VmArea *vma = proc.as->findVma(va);
        if (!vma)
            return -kEFAULT;
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::EncSyncPerms);
        m.args[0] = st.id;
        m.args[1] = va;
        m.args[2] = kPageSize;
        m.args[3] = (vma->prot & kPROT_WRITE ? 1 : 0) |
                    (vma->prot & kPROT_EXEC ? 2 : 0);
        callService(m);
        return okStatus(m) ? 0 : -kEACCES;
    }

    if (st.snapshotId != 0) {
        // CoW break (§13): a clone (or sealed source) wrote a shared
        // template page. Hand VeilS-ENC a fresh frame; it copies the
        // contents and remaps the page privately with write restored.
        Gpa frame = frames_->alloc();
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::EncCloneFault);
        m.args[0] = st.id;
        m.args[1] = va;
        m.args[2] = frame;
        callService(m);
        if (!okStatus(m)) {
            frames_->free(frame);
            return -kEACCES;
        }
        proc.as->mapUser(va, frame, kPROT_READ | kPROT_WRITE);
        st.resident[va] = 1;
        return 0;
    }
    return -kEFAULT;
}

void
Kernel::prepEnclaveRun(Process &proc)
{
    ensure(proc.enclave && proc.enclave->alive, "prepEnclaveRun: no enclave");
    // Drain barrier: records describing pre-enclave activity must be
    // protected before control enters the (mutually distrusting)
    // enclave, mirroring execute-ahead ordering at this boundary.
    if (audit_.backend() == AuditBackend::VeilLogBatched)
        auditRingFlush(AuditFlushTrigger::Barrier);
    // Same boundary for deferred VeilOps: queued EncFreePage/EncSyncPerms
    // must take effect before the enclave can observe (or touch) the
    // affected pages.
    opRingBarrier();
    Vcpu &c = cpu();
    // Scheduler hook (§6.2): when a different enclave gets the VCPU,
    // point the hypervisor's Dom-ENC slot at its VMSA.
    if (scheduledEnclaveVmsa_[c.vcpuId()] != proc.enclave->vmsa) {
        Gpa saved = c.vmsa().ghcbGpa;
        c.vmsa().ghcbGpa = layout_.osGhcb(c.vcpuId());
        Ghcb g;
        g.exitCode = static_cast<uint64_t>(GhcbExit::RegisterVmsa);
        g.info[1] = c.vcpuId();
        g.info[2] = static_cast<uint64_t>(Vmpl::Vmpl2);
        g.info[3] = proc.enclave->vmsa;
        c.hypercall(g);
        c.vmsa().ghcbGpa = saved;
        scheduledEnclaveVmsa_[c.vcpuId()] = proc.enclave->vmsa;
    }
    // Select the user-mapped GHCB and drop to user.
    c.vmsa().ghcbGpa = proc.enclave->ghcbGpa;
    c.setCr3(proc.as->cr3());
    c.setCpl(Cpl::User);
    inEnclaveSession_[c.vcpuId()] = 1;
    c.burn(600);
}

void
Kernel::finishEnclaveRun(Process &proc)
{
    Vcpu &c = cpu();
    c.vmsa().ghcbGpa = layout_.osGhcb(c.vcpuId());
    c.setCpl(Cpl::Supervisor);
    c.setCr3(0);
    inEnclaveSession_[c.vcpuId()] = 0;
    c.burn(400);
}

// ---- Audit (§6.3) ----

void
Kernel::auditHook(Process &proc, uint32_t no, const uint64_t args[6])
{
    if (audit_.backend() == AuditBackend::None || !proc.audited ||
        !audit_.audited(no)) {
        return;
    }
    Vcpu &c = cpu();
    uint64_t t0 = c.rdtsc();
    uint64_t seq = audit_.nextSeq();
    std::string rec =
        audit_.format(proc.pid, proc.comm, no, args, c.rdtsc(), seq);
    c.burn(kAuditFormatCycles);

    switch (audit_.backend()) {
      case AuditBackend::KauditInMemory:
        audit_.kauditAppend(rec);
        c.burn(kKauditAppendCycles);
        break;
      case AuditBackend::VeilLog: {
        // Execute-ahead: protect the record before the event runs.
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::LogAppend);
        size_t len = std::min(rec.size(), core::kIdcbPayloadMax);
        if (len < rec.size()) {
            ++stats_.auditTruncations;
            machine_.tracer().instant(trace::Category::AuditTruncate,
                                      rec.size());
        }
        std::memcpy(m.payload, rec.data(), len);
        m.payloadLen = static_cast<uint32_t>(len);
        // With service batching on, individual records queue through the
        // op ring (weaker than execute-ahead — see §11 mode legality).
        callServiceBatched(m);
        break;
      }
      case AuditBackend::VeilLogBatched:
        auditRingAppend(rec);
        break;
      case AuditBackend::None:
        break;
    }
    ++stats_.auditRecords;
    stats_.auditCycles += c.rdtsc() - t0;
}

uint64_t
Kernel::auditRingPending(uint32_t vcpu) const
{
    ensure(vcpu < auditRings_.size(), "auditRingPending: bad vcpu");
    return auditRings_[vcpu].pending;
}

bool
Kernel::auditFlushAllowed() const
{
    // No nested IDCB call while one is already in flight on this VCPU,
    // and no service call from inside an enclave session: ocall context
    // holds the enclave's GHCB/cr3, which a flush must not disturb.
    Vcpu *c = curCpu();
    if (!booted_ || c == nullptr)
        return false;
    uint32_t v = c->vcpuId();
    return !idcbBusy_[v] && !inEnclaveSession_[v];
}

void
Kernel::auditRingAppend(const std::string &rec)
{
    Vcpu &c = cpu();
    AuditRingState &ring = auditRings_[c.vcpuId()];
    Gpa base = layout_.logRing(c.vcpuId());

    if (!ring.initialized) {
        core::AuditRingHeader h;
        h.capacity = core::kAuditRingSlots;
        c.writePhys(base, &h, sizeof(h));
        ring.initialized = true;
    }

    // Size trigger first: make room before this record queues. A full
    // ring forces the same flush even when the configured batch size
    // exceeds the ring capacity.
    if ((ring.pending >= config_.auditBatchSize ||
         ring.pending >= core::kAuditRingSlots) &&
        auditFlushAllowed()) {
        auditRingFlush(AuditFlushTrigger::Size);
    }
    if (ring.pending >= core::kAuditRingSlots) {
        // Ring full and flushing impossible (e.g. ocall context):
        // drop, never overwrite unprotected records.
        ++ring.producerDrops;
        ++stats_.auditRingDrops;
        c.writePhys(base + offsetof(core::AuditRingHeader, producerDrops),
                    &ring.producerDrops, sizeof(ring.producerDrops));
        return;
    }

    uint32_t len = static_cast<uint32_t>(
        std::min(rec.size(), core::kAuditSlotDataMax));
    if (len < rec.size()) {
        ++stats_.auditTruncations;
        machine_.tracer().instant(trace::Category::AuditTruncate, rec.size());
    }
    Gpa slot = core::auditRingSlot(base, ring.head);
    c.writePhys(slot, &len, sizeof(len));
    c.writePhys(slot + sizeof(len), rec.data(), len);
    ++ring.head;
    if (ring.pending++ == 0)
        ring.oldestTsc = c.rdtsc();
    c.writePhys(base + offsetof(core::AuditRingHeader, head), &ring.head,
                sizeof(ring.head));
    c.burn(kKauditAppendCycles);
}

void
Kernel::auditRingFlush(AuditFlushTrigger trigger)
{
    Vcpu &c = cpu();
    AuditRingState &ring = auditRings_[c.vcpuId()];
    if (ring.pending == 0)
        return;
    ensure(auditFlushAllowed(), "auditRingFlush: flush not allowed here");

    trace::SpanScope span(machine_.tracer(), trace::Category::AuditFlush,
                          ring.pending);
    // Bounded retry on transient denial: the batch consumer advances
    // the shared tail before replying, so a re-issued flush re-offers
    // only records the service has not yet consumed (idempotent). A
    // persistently-failing flush halts with attribution rather than
    // silently shedding protected records.
    constexpr int kFlushRetryMax = 3;
    for (int attempt = 0;; ++attempt) {
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::LogAppendBatch);
        m.args[0] = layout_.logRing(c.vcpuId());
        callService(m);
        if (okStatus(m))
            break;
        if (attempt >= kFlushRetryMax) {
            throw snp::CvmHaltFault(
                "auditRingFlush: LogAppendBatch denied beyond the retry "
                "budget");
        }
        ++stats_.auditFlushRetries;
        c.burn(2'000 << attempt);
    }

    ++stats_.auditBatchFlushes;
    stats_.auditFlushedRecords += ring.pending;
    switch (trigger) {
      case AuditFlushTrigger::Size: ++stats_.auditFlushSize; break;
      case AuditFlushTrigger::Deadline: ++stats_.auditFlushDeadline; break;
      case AuditFlushTrigger::Barrier: ++stats_.auditFlushBarrier; break;
    }
    ring.pending = 0;
    ring.oldestTsc = 0;
}

void
Kernel::auditMaybeDeadlineFlush()
{
    Vcpu *c = curCpu();
    if (!auditFlushAllowed() || c == nullptr)
        return;
    AuditRingState &ring = auditRings_[c->vcpuId()];
    if (ring.pending == 0)
        return;
    if (c->rdtsc() - ring.oldestTsc < config_.auditFlushDeadlineCycles)
        return;
    auditRingFlush(AuditFlushTrigger::Deadline);
}

// ---- Batched VeilOp submission (exit-less service calls, §11) ----

bool
Kernel::opDeferrable(uint32_t op) const
{
    // Fire-and-forget ops whose results no call site consumes inline.
    // LogAppendBatch is itself a flush op and is deliberately NOT
    // deferrable: queueing it would reset the audit ring's pending
    // count while records sit undrained in the shared audit ring.
    switch (static_cast<VeilOp>(op)) {
      case VeilOp::LogAppend:
      case VeilOp::EncSyncPerms:
      case VeilOp::EncFreePage:
      case VeilOp::PageStateChange:
        return true;
      default:
        return false;
    }
}

bool
Kernel::opBatchingLegal() const
{
    // Same gate as audit flushing, plus the mode switches: no queueing
    // before boot, from ocall context (an enclave session holds the
    // enclave GHCB/cr3 and deferring EncSyncPerms/EncFreePage there
    // would let the enclave touch not-yet-revoked frames), or while an
    // IDCB call is in flight on this VCPU.
    return config_.veilEnabled && config_.serviceBatching &&
           auditFlushAllowed();
}

uint64_t
Kernel::opRingPending(uint32_t vcpu) const
{
    ensure(vcpu < opRings_.size(), "opRingPending: bad vcpu");
    return opRings_[vcpu].pending;
}

bool
Kernel::opSubmit(const IdcbMessage &msg, uint32_t *seq_out)
{
    if (!opBatchingLegal() || !opDeferrable(msg.op))
        return false;
    if (msg.payloadLen > core::kOpPayloadMax)
        return false; // oversized: sync path keeps the 2 KB transport
    Vcpu &c = cpu();
    OpRingState &ring = opRings_[c.vcpuId()];
    Gpa sub = layout_.opSubRing(c.vcpuId());

    if (!ring.initialized) {
        core::RingHeader h;
        h.capacity = core::kOpRingSlots;
        c.writePhys(sub, &h, sizeof(h));
        core::RingHeader ch;
        ch.capacity = core::kOpCplSlots;
        c.writePhys(layout_.opCplRing(c.vcpuId()), &ch, sizeof(ch));
        ring.initialized = true;
    }

    // Size trigger first: make room before this op queues. A full ring
    // forces the same flush even when the configured batch size exceeds
    // the ring capacity.
    if (ring.pending >= config_.opBatchSize ||
        ring.pending >= core::kOpRingSlots) {
        opRingFlush(OpFlushTrigger::Size);
    }
    if (ring.pending >= core::kOpRingSlots)
        return false; // still full: backpressure falls back to sync

    core::VeilOpSlot slot;
    slot.op = msg.op;
    slot.seq = static_cast<uint32_t>(ring.submitted);
    static_assert(sizeof(slot.args) == sizeof(msg.args));
    std::memcpy(slot.args, msg.args, sizeof(slot.args));
    slot.payloadLen = msg.payloadLen;
    std::memcpy(slot.payload, msg.payload, msg.payloadLen);
    Gpa sp = core::ringSlot(sub, core::kOpSlotBytes, core::kOpRingSlots,
                            ring.head);
    c.writePhys(sp, &slot, sizeof(slot));
    ++ring.head;
    ++ring.submitted;
    if (ring.pending++ == 0)
        ring.oldestTsc = c.rdtsc();
    c.writePhys(sub + offsetof(core::RingHeader, head), &ring.head,
                sizeof(ring.head));
    c.burn(kOpAppendCycles);

    ++stats_.opSubmitted;
    if (msg.op < core::kVeilOpCount)
        ++stats_.veilOpCalls[msg.op];
    stats_.opMaxDepth = std::max<uint64_t>(stats_.opMaxDepth, ring.pending);
    if (seq_out)
        *seq_out = slot.seq;
    return true;
}

void
Kernel::opRingFlush(OpFlushTrigger trigger)
{
    Vcpu &c = cpu();
    OpRingState &ring = opRings_[c.vcpuId()];
    if (ring.pending == 0)
        return;
    ensure(auditFlushAllowed(), "opRingFlush: flush not allowed here");

    trace::SpanScope span(machine_.tracer(), trace::Category::RingFlush,
                          ring.pending);
    // The dispatcher advances the shared submission tail op by op as it
    // drains, so a re-rung doorbell after a partial drain (completion
    // backpressure) re-offers only what is still queued. A doorbell
    // that cannot empty the ring within the budget halts with
    // attribution rather than silently shedding deferred ops.
    constexpr int kDoorbellRetryMax = 3;
    for (int attempt = 0;; ++attempt) {
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::OpRingDoorbell);
        callService(m);
        ++stats_.opDoorbells;
        // The shared submission tail is the ground truth for what was
        // consumed — immune to stale local state after chaos-duplicated
        // drains.
        core::RingHeader h;
        c.readPhys(layout_.opSubRing(c.vcpuId()), &h, sizeof(h));
        ring.pending = ring.head - std::min(h.tail, ring.head);
        opHarvestCompletions();
        if (okStatus(m) && ring.pending == 0)
            break;
        if (attempt >= kDoorbellRetryMax) {
            throw snp::CvmHaltFault(
                "opRingFlush: doorbell starved beyond the retry budget");
        }
        ++stats_.opDoorbellRetries;
        c.burn(2'000 << attempt);
    }

    switch (trigger) {
      case OpFlushTrigger::Size: ++stats_.opFlushSize; break;
      case OpFlushTrigger::Deadline: ++stats_.opFlushDeadline; break;
      case OpFlushTrigger::Barrier: ++stats_.opFlushBarrier; break;
    }
    ring.oldestTsc = 0;
}

void
Kernel::opHarvestCompletions()
{
    Vcpu &c = cpu();
    OpRingState &ring = opRings_[c.vcpuId()];
    if (!ring.initialized)
        return;
    Gpa cplr = layout_.opCplRing(c.vcpuId());
    core::RingHeader h;
    c.readPhys(cplr, &h, sizeof(h));
    // The completion producer is trusted Dom-SRV, but the index is
    // still validated (VeilChaos exercises stale/duplicated views):
    // completions never outrun submissions, never run backwards, and
    // never lead the consumer by more than the ring capacity. An
    // inconsistent view is counted and skipped; the flush retry loop
    // re-reads it, and a persistent one surfaces as a starved doorbell.
    if (h.head < ring.harvested || h.head > ring.submitted ||
        h.head - ring.harvested > core::kOpCplSlots) {
        ++stats_.opCplResyncs;
        return;
    }
    while (ring.harvested < h.head) {
        core::VeilOpCompletion cpl;
        c.readPhys(core::ringSlot(cplr, core::kOpCplSlotBytes,
                                  core::kOpCplSlots, ring.harvested),
                   &cpl, sizeof(cpl));
        ++ring.harvested;
        ++stats_.opCompletions;
        opCompletionArrived(cpl);
    }
    c.writePhys(cplr + offsetof(core::RingHeader, tail), &ring.harvested,
                sizeof(ring.harvested));
}

void
Kernel::opCompletionArrived(const core::VeilOpCompletion &cpl)
{
    bool ok = cpl.status == static_cast<uint64_t>(VeilStatus::Ok);
    if (!ok)
        ++stats_.opCplErrors;

    // Deferred EncFreePage: the frame now holds the sealed page image;
    // run the swap-out post-processing the sync path does inline.
    auto &dfp = deferredFreePages_[cpu().vcpuId()];
    for (auto it = dfp.begin(); it != dfp.end(); ++it) {
        if (it->seq != cpl.seq)
            continue;
        if (!ok) {
            throw snp::CvmHaltFault(
                "deferred EncFreePage refused by VeilS-ENC after its "
                "caller already observed success");
        }
        Process *p = it->proc;
        ensure(p->enclave.has_value(), "op completion: enclave vanished");
        Bytes swapped(kPageSize);
        cpu().readPhys(it->pa, swapped.data(), swapped.size());
        p->enclave->swapStore[it->va] = std::move(swapped);
        p->as->unmapUser(it->va);
        p->enclave->resident.erase(it->va);
        frames_->free(it->pa);
        dfp.erase(it);
        return;
    }

    // A refused deferred PageStateChange mirrors the sync path's
    // ensure(okStatus): the caller already proceeded on success.
    if (!ok && cpl.op == static_cast<uint32_t>(VeilOp::PageStateChange)) {
        throw snp::CvmHaltFault(
            "deferred PageStateChange refused by VeilMon after its "
            "caller already observed success");
    }
}

void
Kernel::opMaybeDeadlineFlush()
{
    if (!config_.veilEnabled || !config_.serviceBatching)
        return;
    Vcpu *c = curCpu();
    if (!auditFlushAllowed() || c == nullptr)
        return;
    OpRingState &ring = opRings_[c->vcpuId()];
    if (ring.pending == 0)
        return;
    if (c->rdtsc() - ring.oldestTsc < config_.opFlushDeadlineCycles)
        return;
    opRingFlush(OpFlushTrigger::Deadline);
}

void
Kernel::opRingBarrier()
{
    Vcpu *c = curCpu();
    if (!config_.veilEnabled || !config_.serviceBatching || c == nullptr)
        return;
    opRingFlush(OpFlushTrigger::Barrier);
    if (!deferredFreePages_[c->vcpuId()].empty()) {
        // A resync skipped a harvest round; collect the completions now.
        opHarvestCompletions();
    }
    ensure(deferredFreePages_[c->vcpuId()].empty(),
           "opRingBarrier: deferred EncFreePage without a completion");
}

// ---- Syscalls ----

int64_t
Kernel::syscall(Process &proc, uint32_t no, const uint64_t args[6])
{
    Vcpu &c = cpu();
    trace::SpanScope span(c.machine().tracer(), trace::Category::Syscall,
                          no);
    ++stats_.syscalls;
    ++proc.syscalls;

    // Trap into ring 0 on the process address space.
    Cpl saved_cpl = c.cpl();
    Gpa saved_cr3 = c.vmsa().cr3;
    c.setCpl(Cpl::Supervisor);
    c.setCr3(proc.as->cr3());
    c.burn(kSyscallEntryCycles);

    auditHook(proc, no, args);

    int64_t ret;
    switch (no) {
      case kSysRead:
        ret = sysRead(proc, int(args[0]), args[1], args[2], std::nullopt);
        break;
      case kSysWrite:
        ret = sysWrite(proc, int(args[0]), args[1], args[2], std::nullopt);
        break;
      case kSysPread64:
        ret = sysRead(proc, int(args[0]), args[1], args[2], args[3]);
        break;
      case kSysPwrite64:
        ret = sysWrite(proc, int(args[0]), args[1], args[2], args[3]);
        break;
      case kSysOpen:
        ret = sysOpen(proc, args[0], int(args[1]));
        break;
      case kSysCreat:
        ret = sysOpen(proc, args[0], kO_CREAT | kO_TRUNC | kO_WRONLY);
        break;
      case kSysClose:
        ret = sysClose(proc, int(args[0]));
        break;
      case kSysStat:
        ret = sysStat(proc, args[0], args[1]);
        break;
      case kSysFstat:
        ret = sysFstat(proc, int(args[0]), args[1]);
        break;
      case kSysPoll: {
          // Readiness probe for one socket fd (epoll_wait-class cost).
          c.burn(700);
          FdEntry *e = proc.fd(int(args[0]));
          if (!e || e->type != FdEntry::Type::Socket) {
              ret = -kEBADF;
          } else {
              Socket &s = net_.sock(e->sock);
              ret = (!s.backlog.empty() || !s.rx.empty() || s.peerClosed)
                        ? 1
                        : 0;
          }
          break;
      }
      case kSysLseek:
        ret = sysLseek(proc, int(args[0]), int64_t(args[1]), int(args[2]));
        break;
      case kSysMmap:
        ret = sysMmap(proc, args[0], args[1], int(args[2]), int(args[3]),
                      int(int64_t(args[4])));
        break;
      case kSysMprotect:
        ret = sysMprotect(proc, args[0], args[1], int(args[2]));
        break;
      case kSysMunmap:
        ret = sysMunmap(proc, args[0], args[1]);
        break;
      case kSysIoctl:
        ret = sysIoctl(proc, int(args[0]), args[1], args[2]);
        break;
      case kSysDup: {
          c.burn(350);
          FdEntry *e = proc.fd(int(args[0]));
          if (!e) {
              ret = -kEBADF;
          } else {
              // Copy first: allocFd may grow proc.fds and invalidate e.
              FdEntry entry = *e;
              int nfd = proc.allocFd();
              if (nfd < 0) {
                  ret = -kEMFILE;
              } else {
                  proc.fds[nfd] = entry;
                  ret = nfd;
              }
          }
          break;
      }
      case kSysGetpid:
        c.burn(50);
        ret = proc.pid;
        break;
      case kSysSocket:
        ret = sysSocket(proc, int(args[0]), int(args[1]));
        break;
      case kSysConnect:
        ret = sysConnect(proc, int(args[0]), args[1]);
        break;
      case kSysAccept:
        ret = sysAccept(proc, int(args[0]));
        break;
      case kSysSendto:
        ret = sysSendto(proc, int(args[0]), args[1], args[2]);
        break;
      case kSysRecvfrom:
        ret = sysRecvfrom(proc, int(args[0]), args[1], args[2]);
        break;
      case kSysBind:
        ret = sysBind(proc, int(args[0]), args[1]);
        break;
      case kSysListen:
        ret = sysListen(proc, int(args[0]), int(args[1]));
        break;
      case kSysFsync:
        c.burn(4650);
        ret = proc.fd(int(args[0])) ? 0 : -kEBADF;
        break;
      case kSysFtruncate:
        ret = sysFtruncate(proc, int(args[0]), args[1]);
        break;
      case kSysRename:
        ret = sysRename(proc, args[0], args[1]);
        break;
      case kSysMkdir:
        ret = sysMkdir(proc, args[0]);
        break;
      case kSysUnlink:
        ret = sysUnlink(proc, args[0]);
        break;
      case kSysClockGettime:
        ret = sysClockGettime(proc, args[1]);
        break;
      default:
        ret = -kENOSYS;
        break;
    }

    c.setCpl(saved_cpl);
    c.setCr3(saved_cr3);
    if (tamper_)
        ret = tamper_(no, ret);
    return ret;
}

int64_t
Kernel::sysOpen(Process &p, Gva path_gva, int flags)
{
    Vcpu &c = cpu();
    c.burn(3750);
    std::string path = c.readCStr(path_gva, 512);
    auto ino = fs_.resolve(path);
    if (!ino) {
        if (!(flags & kO_CREAT))
            return -kENOENT;
        auto parent = fs_.resolveParent(path);
        if (!parent)
            return -kENOENT;
        ino = fs_.createFile(parent->first, parent->second);
        if (!ino)
            return -kENOENT;
    } else if (flags & kO_TRUNC) {
        Inode &n = fs_.inode(*ino);
        if (n.dir)
            return -kEISDIR;
        n.data.clear();
    }
    if (fs_.inode(*ino).dir && (flags & (kO_WRONLY | kO_RDWR)))
        return -kEISDIR;
    int fd = p.allocFd();
    if (fd < 0)
        return -kEMFILE;
    FdEntry e;
    e.type = FdEntry::Type::File;
    e.ino = *ino;
    e.flags = flags;
    e.offset = (flags & kO_APPEND) ? fs_.inode(*ino).data.size() : 0;
    p.fds[fd] = e;
    return fd;
}

int64_t
Kernel::sysClose(Process &p, int fd)
{
    cpu().burn(550);
    FdEntry *e = p.fd(fd);
    if (!e)
        return -kEBADF;
    if (e->type == FdEntry::Type::Socket)
        net_.close(e->sock);
    e->type = FdEntry::Type::Free;
    return 0;
}

int64_t
Kernel::sysRead(Process &p, int fd, Gva buf, uint64_t len,
                std::optional<uint64_t> at)
{
    Vcpu &c = cpu();
    c.burn(3650);
    FdEntry *e = p.fd(fd);
    if (!e)
        return -kEBADF;
    if (e->type == FdEntry::Type::Socket)
        return sysRecvfrom(p, fd, buf, len);
    if (e->type != FdEntry::Type::File)
        return -kEINVAL;
    Inode &n = fs_.inode(e->ino);
    if (n.dir)
        return -kEISDIR;
    uint64_t off = at.value_or(e->offset);
    if (off >= n.data.size())
        return 0;
    uint64_t take = std::min<uint64_t>(len, n.data.size() - off);
    c.write(buf, n.data.data() + off, take);
    if (!at)
        e->offset = off + take;
    return static_cast<int64_t>(take);
}

int64_t
Kernel::sysWrite(Process &p, int fd, Gva buf, uint64_t len,
                 std::optional<uint64_t> at)
{
    Vcpu &c = cpu();
    FdEntry *e = p.fd(fd);
    if (!e)
        return -kEBADF;
    if (e->type == FdEntry::Type::Console) {
        c.burn(2350);
        std::string text(len, '\0');
        c.read(buf, text.data(), len);
        if (console_.size() < (1u << 20))
            conAppend(text);
        return static_cast<int64_t>(len);
    }
    if (e->type == FdEntry::Type::Socket)
        return sysSendto(p, fd, buf, len);
    if (e->type != FdEntry::Type::File)
        return -kEINVAL;
    c.burn(3850);
    Inode &n = fs_.inode(e->ino);
    if (n.dir)
        return -kEISDIR;
    uint64_t off = at.value_or(e->offset);
    if (n.data.size() < off + len)
        n.data.resize(off + len);
    c.read(buf, n.data.data() + off, len);
    if (!at)
        e->offset = off + len;
    return static_cast<int64_t>(len);
}

int64_t
Kernel::sysLseek(Process &p, int fd, int64_t off, int whence)
{
    cpu().burn(350);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::File)
        return -kEBADF;
    Inode &n = fs_.inode(e->ino);
    int64_t base = 0;
    switch (whence) {
      case kSeekSet:
        base = 0;
        break;
      case kSeekCur:
        base = static_cast<int64_t>(e->offset);
        break;
      case kSeekEnd:
        base = static_cast<int64_t>(n.data.size());
        break;
      default:
        return -kEINVAL;
    }
    int64_t pos = base + off;
    if (pos < 0)
        return -kEINVAL;
    e->offset = static_cast<uint64_t>(pos);
    return pos;
}

int64_t
Kernel::sysStat(Process &p, Gva path_gva, Gva out)
{
    Vcpu &c = cpu();
    c.burn(2150);
    std::string path = c.readCStr(path_gva, 512);
    auto ino = fs_.resolve(path);
    if (!ino)
        return -kENOENT;
    const Inode &n = fs_.inode(*ino);
    Stat st;
    st.ino = n.ino;
    st.size = n.data.size();
    st.isDir = n.dir;
    st.mode = n.dir ? 040755 : 0100644;
    c.writeObj(out, st);
    return 0;
}

int64_t
Kernel::sysFstat(Process &p, int fd, Gva out)
{
    Vcpu &c = cpu();
    c.burn(550);
    FdEntry *e = p.fd(fd);
    if (!e)
        return -kEBADF;
    Stat st;
    if (e->type == FdEntry::Type::File) {
        const Inode &n = fs_.inode(e->ino);
        st.ino = n.ino;
        st.size = n.data.size();
        st.isDir = n.dir;
        st.mode = n.dir ? 040755 : 0100644;
    } else {
        st.mode = 020666; // character device-ish
    }
    c.writeObj(out, st);
    return 0;
}

int64_t
Kernel::sysMmap(Process &p, Gva addr, uint64_t len, int prot, int flags,
                int fd)
{
    Vcpu &c = cpu();
    c.burn(4500);
    if (!(flags & kMAP_ANONYMOUS) || fd != -1)
        return -kEINVAL; // file-backed mmap unsupported (musl-style)
    if (len == 0)
        return -kEINVAL;
    size_t pages = pageAlignUp(len) / kPageSize;
    Gva va;
    if (flags & kMAP_FIXED) {
        if (!isPageAligned(addr) || addr < core::kUserVaLo ||
            addr + pages * kPageSize > core::kUserVaHi) {
            return -kEINVAL;
        }
        // Enclave regions are pinned until destroy (same rule as
        // munmap); everything else is replaced below.
        for (size_t i = 0; i < pages; ++i) {
            VmArea *old = p.as->findVma(addr + i * kPageSize);
            if (old && old->enclave)
                return -kEINVAL;
        }
        va = addr;
    } else {
        va = p.as->allocUserRange(pages);
    }
    for (size_t i = 0; i < pages; ++i) {
        // MAP_FIXED atomically replaces an existing *user* mapping; the
        // old frame goes back to the allocator instead of leaking. The
        // user-bit check matters: in a full address space the
        // supervisor identity map aliases these GVAs, and tearing out
        // an identity PTE would free a frame the allocator never owned.
        if (auto old = p.as->userLeaf(va + i * kPageSize)) {
            if (*old & snp::PteUser) {
                p.as->unmapUser(va + i * kPageSize);
                frames_->free(*old & snp::kPteAddrMask);
            }
        }
        Gpa frame = frames_->alloc();
        machine_.memory().zeroPage(frame);
        c.burn(kPageZeroCycles);
        p.as->mapUser(va + i * kPageSize, frame, prot);
    }
    VmArea vma;
    vma.lo = va;
    vma.hi = va + pages * kPageSize;
    vma.prot = prot;
    p.as->addVma(vma);
    // Note: new mappings reach a live enclave's cloned tables lazily,
    // on its first (faulting) access (§6.2).
    return static_cast<int64_t>(va);
}

int64_t
Kernel::sysMunmap(Process &p, Gva addr, uint64_t len)
{
    Vcpu &c = cpu();
    c.burn(3000);
    if (!isPageAligned(addr) || len == 0)
        return -kEINVAL;
    Gva hi = addr + pageAlignUp(len);
    VmArea *vma = p.as->findVma(addr);
    if (!vma || vma->hi < hi)
        return -kEINVAL;
    if (vma->enclave)
        return -kEINVAL; // enclave regions are pinned until destroy
    for (Gva va = addr; va < hi; va += kPageSize) {
        auto frame = p.as->unmapUser(va);
        if (frame)
            frames_->free(*frame);
        c.burn(kPageUnmapCycles);
    }
    if (vma->lo == addr && vma->hi == hi) {
        p.as->removeVma(vma->lo);
    } else if (vma->lo == addr) {
        VmArea rest = *vma;
        p.as->removeVma(vma->lo);
        rest.lo = hi;
        p.as->addVma(rest);
    } else {
        vma->hi = addr;
    }
    // Eagerly drop the range from a live enclave's cloned tables so the
    // enclave can never touch recycled frames (§6.2 synchronization).
    if (p.enclave && p.enclave->alive) {
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::EncSyncPerms);
        m.args[0] = p.enclave->id;
        m.args[1] = addr;
        m.args[2] = hi - addr;
        m.args[3] = 0x80; // unmap
        // Deferrable: the enclave cannot run before prepEnclaveRun's
        // op-ring barrier drains this unmap.
        callServiceBatched(m);
    }
    return 0;
}

int64_t
Kernel::sysMprotect(Process &p, Gva addr, uint64_t len, int prot)
{
    Vcpu &c = cpu();
    c.burn(2650);
    if (!isPageAligned(addr) || len == 0)
        return -kEINVAL;
    Gva hi = addr + pageAlignUp(len);
    VmArea *vma = p.as->findVma(addr);
    if (!vma || vma->hi < hi)
        return -kEINVAL;
    if (vma->enclave) {
        // Enclave-region permission changes are mediated by VeilS-ENC
        // (§6.2): requests originate from the enclave (via its GHCB /
        // ocall path) and the service bounds them to the enclave range.
        if (!inEnclaveSession_[cpu().vcpuId()])
            return -kEACCES; // the OS itself may not touch enclave perms
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::EncMprotect);
        m.args[0] = p.enclave->id;
        m.args[1] = addr;
        m.args[2] = hi - addr;
        m.args[3] = (prot & kPROT_WRITE ? 1 : 0) | (prot & kPROT_EXEC ? 2 : 0);
        callService(m);
        return okStatus(m) ? 0 : -kEACCES;
    }
    for (Gva va = addr; va < hi; va += kPageSize) {
        if (p.as->userLeaf(va))
            p.as->protectUser(va, prot);
    }
    vma->prot = prot;
    if (p.enclave && p.enclave->alive) {
        IdcbMessage m;
        m.op = static_cast<uint32_t>(VeilOp::EncSyncPerms);
        m.args[0] = p.enclave->id;
        m.args[1] = addr;
        m.args[2] = hi - addr;
        m.args[3] = (prot & kPROT_WRITE ? 1 : 0) | (prot & kPROT_EXEC ? 2 : 0);
        callServiceBatched(m);
    }
    return 0;
}

int64_t
Kernel::sysSocket(Process &p, int family, int type)
{
    cpu().burn(2300);
    if (family != kAF_INET || type != kSOCK_STREAM)
        return -kEINVAL;
    int fd = p.allocFd();
    if (fd < 0)
        return -kEMFILE;
    FdEntry e;
    e.type = FdEntry::Type::Socket;
    e.sock = net_.create();
    p.fds[fd] = e;
    return fd;
}

int64_t
Kernel::sysBind(Process &p, int fd, Gva addr_gva)
{
    Vcpu &c = cpu();
    c.burn(1450);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::Socket)
        return -kENOTSOCK;
    SockAddrIn sa = c.readObj<SockAddrIn>(addr_gva);
    if (sa.family != kAF_INET)
        return -kEINVAL;
    return net_.bind(e->sock, sa.port);
}

int64_t
Kernel::sysListen(Process &p, int fd, int backlog)
{
    cpu().burn(1150);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::Socket)
        return -kENOTSOCK;
    return net_.listen(e->sock, backlog);
}

int64_t
Kernel::sysConnect(Process &p, int fd, Gva addr_gva)
{
    Vcpu &c = cpu();
    c.burn(3150);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::Socket)
        return -kENOTSOCK;
    SockAddrIn sa = c.readObj<SockAddrIn>(addr_gva);
    return net_.connect(e->sock, sa.port);
}

int64_t
Kernel::sysAccept(Process &p, int fd)
{
    cpu().burn(2850);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::Socket)
        return -kENOTSOCK;
    int64_t conn = net_.accept(e->sock);
    if (conn < 0)
        return conn;
    int nfd = p.allocFd();
    if (nfd < 0)
        return -kEMFILE;
    FdEntry ne;
    ne.type = FdEntry::Type::Socket;
    ne.sock = conn;
    p.fds[nfd] = ne;
    return nfd;
}

int64_t
Kernel::sysSendto(Process &p, int fd, Gva buf, uint64_t len)
{
    Vcpu &c = cpu();
    c.burn(2550);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::Socket)
        return -kENOTSOCK;
    std::vector<uint8_t> data(len);
    c.read(buf, data.data(), len);
    return net_.send(e->sock, data.data(), data.size());
}

int64_t
Kernel::sysRecvfrom(Process &p, int fd, Gva buf, uint64_t len)
{
    Vcpu &c = cpu();
    c.burn(2250);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::Socket)
        return -kENOTSOCK;
    std::vector<uint8_t> data(len);
    int64_t got = net_.recv(e->sock, data.data(), len);
    if (got > 0)
        c.write(buf, data.data(), static_cast<size_t>(got));
    return got;
}

int64_t
Kernel::sysIoctl(Process &p, int fd, uint64_t cmd, Gva arg)
{
    Vcpu &c = cpu();
    c.burn(2650);
    switch (cmd) {
      case kVeilIocEnclaveCreate: {
          VeilEnclaveCreateArgs a = c.readObj<VeilEnclaveCreateArgs>(arg);
          int64_t ret = enclaveCreate(p, a);
          if (ret == 0)
              c.writeObj(arg, a);
          return ret;
      }
      case kVeilIocEnclaveDestroy:
        return enclaveDestroy(p);
      case kVeilIocEnclaveSnapshot: {
          VeilSnapshotArgs a = c.readObj<VeilSnapshotArgs>(arg);
          int64_t ret = enclaveSnapshot(p, a);
          if (ret == 0)
              c.writeObj(arg, a);
          return ret;
      }
      case kVeilIocEnclaveClone: {
          VeilCloneArgs a = c.readObj<VeilCloneArgs>(arg);
          int64_t ret = enclaveClone(p, a);
          if (ret == 0)
              c.writeObj(arg, a);
          return ret;
      }
      case kVeilIocSnapshotRelease:
        return enclaveSnapshotRelease(c.readObj<uint64_t>(arg));
      default:
        return -kENOSYS;
    }
}

int64_t
Kernel::sysUnlink(Process &p, Gva path_gva)
{
    Vcpu &c = cpu();
    c.burn(2050);
    std::string path = c.readCStr(path_gva, 512);
    auto parent = fs_.resolveParent(path);
    if (!parent)
        return -kENOENT;
    return fs_.remove(parent->first, parent->second) ? 0 : -kENOENT;
}

int64_t
Kernel::sysRename(Process &p, Gva oldp, Gva newp)
{
    Vcpu &c = cpu();
    c.burn(2250);
    std::string from = c.readCStr(oldp, 512);
    std::string to = c.readCStr(newp, 512);
    auto op = fs_.resolveParent(from);
    auto np = fs_.resolveParent(to);
    if (!op || !np)
        return -kENOENT;
    return fs_.rename(op->first, op->second, np->first, np->second)
               ? 0
               : -kENOENT;
}

int64_t
Kernel::sysMkdir(Process &p, Gva path_gva)
{
    Vcpu &c = cpu();
    c.burn(2450);
    std::string path = c.readCStr(path_gva, 512);
    auto parent = fs_.resolveParent(path);
    if (!parent)
        return -kENOENT;
    return fs_.createDir(parent->first, parent->second) ? 0 : -kEEXIST;
}

int64_t
Kernel::sysFtruncate(Process &p, int fd, uint64_t len)
{
    cpu().burn(1650);
    FdEntry *e = p.fd(fd);
    if (!e || e->type != FdEntry::Type::File)
        return -kEBADF;
    fs_.inode(e->ino).data.resize(len);
    return 0;
}

int64_t
Kernel::sysClockGettime(Process &p, Gva out)
{
    Vcpu &c = cpu();
    c.burn(150);
    double secs = machine_.costs().seconds(c.rdtsc());
    TimeSpec ts;
    ts.sec = static_cast<int64_t>(secs);
    ts.nsec = static_cast<int64_t>((secs - double(ts.sec)) * 1e9);
    c.writeObj(out, ts);
    return 0;
}

uint64_t
Kernel::syscallBaseCost(uint32_t no) const
{
    return 2000; // unused placeholder; bodies charge their own costs
}

} // namespace veil::kern
