/**
 * @file
 * The mini guest kernel. Plays the role of the paper's modified Linux
 * guest (§7): it runs at Dom-UNT under Veil (or at VMPL-0 in a native
 * CVM), delegates VCPU boot and page-state changes to VeilMon (§5.3),
 * hooks its audit framework into VeilS-LOG (§6.3), routes module
 * loading through VeilS-KCI (§6.1), and ships the enclave driver that
 * sets up VeilS-ENC enclaves (§6.2).
 */
#ifndef VEIL_KERNEL_KERNEL_HH_
#define VEIL_KERNEL_KERNEL_HH_

#include <functional>

#include "base/spinlock.hh"
#include "base/stat_counter.hh"
#include "kernel/audit.hh"
#include "kernel/process.hh"
#include "kernel/uapi.hh"
#include "veil/layout.hh"
#include "veil/module_format.hh"
#include "veil/proto.hh"

namespace veil::kern {

/** Kernel configuration. */
struct KernelConfig
{
    /// Running under Veil (Dom-UNT) vs native CVM (VMPL-0 boot).
    bool veilEnabled = true;
    /// Activate VeilS-KCI W^X + signed module loading at boot.
    bool activateKci = true;
    AuditBackend auditBackend = AuditBackend::None;
    std::set<uint32_t> auditRules;
    /// VeilLogBatched: flush the ring once this many records queue up.
    uint32_t auditBatchSize = 32;
    /// VeilLogBatched: flush on the first timer tick once the oldest
    /// queued record has been pending this many cycles (bounds the loss
    /// window; see DESIGN.md §9).
    uint64_t auditFlushDeadlineCycles = 2'000'000;
    /// Exit-less VeilOp batching (DESIGN.md §11): queue deferrable
    /// service calls (LogAppend, EncSyncPerms, EncFreePage,
    /// PageStateChange) in the per-VCPU submission ring and ring the
    /// doorbell in groups instead of paying a domain-switch round trip
    /// per call. Off by default: the sync path stays bit-identical.
    bool serviceBatching = false;
    /// serviceBatching: doorbell once this many ops queue up.
    uint32_t opBatchSize = 16;
    /// serviceBatching: doorbell on the first timer tick once the
    /// oldest queued op has been pending this many cycles.
    uint64_t opFlushDeadlineCycles = 2'000'000;
    /// Lazy acceptance (DESIGN.md §14): the launch left bulk memory
    /// unassigned; boot accepts it via PageStateChange-to-private.
    /// With huge pages on the requests are grouped (multi-entry 2 MiB
    /// PSC); off, each page pays its own round trip (ablation baseline).
    bool lazyAccept = false;
    /// Module signing key known to the kernel build (native verify
    /// path) and provisioned to VeilS-KCI.
    Bytes moduleKey = {'m', 'o', 'd', '-', 'k', 'e', 'y'};
};

/** Cumulative kernel event counters (relaxed-atomic StatCounters so
 *  host-side readers never tear a value while a VCPU thread bumps it). */
struct KernelStats
{
    base::StatCounter syscalls;
    base::StatCounter auditRecords;
    base::StatCounter auditCycles; ///< cycles producing/sending records
    base::StatCounter auditTruncations; ///< records clamped to fit transport
    base::StatCounter auditRingDrops;   ///< batched mode: ring full, lost
    base::StatCounter auditBatchFlushes;  ///< LogAppendBatch calls issued
    base::StatCounter auditFlushedRecords;///< records carried by flushes
    base::StatCounter auditFlushSize;     ///< flushes from batch size
    base::StatCounter auditFlushDeadline; ///< flushes from the deadline
    base::StatCounter auditFlushBarrier;  ///< flushes from drain barriers
    base::StatCounter auditFlushRetries;  ///< flushes re-issued after denial
    base::StatCounter monitorCalls;
    base::StatCounter serviceCalls;
    base::StatCounter enclaveFaults;
    base::StatCounter modulesLoaded;
    // ---- VeilOp ring batching (§11) ----
    base::StatCounter opSubmitted;       ///< ops queued in the ring
    base::StatCounter opDoorbells;       ///< OpRingDoorbell calls issued
    base::StatCounter opDoorbellRetries; ///< re-rings after partial drain
    base::StatCounter opSyncFallbacks;   ///< deferrable ops forced sync
                                         ///< (full, oversized, or illegal)
    base::StatCounter opCompletions;     ///< completions harvested
    base::StatCounter opCplErrors;       ///< completions with status != Ok
    base::StatCounter opCplResyncs;      ///< completion-header resyncs
                                         ///< (stale or inconsistent index)
    base::StatCounter opFlushSize;       ///< doorbells from batch size
    base::StatCounter opFlushDeadline;   ///< doorbells from the deadline
    base::StatCounter opFlushBarrier;    ///< doorbells from barriers
    base::StatCounter opMaxDepth;        ///< deepest submission queue seen
    /// Per-VeilOp call counts across both transports (sync IDCB calls
    /// count at issue, batched ops at submission).
    base::StatCounter veilOpCalls[core::kVeilOpCount];
};

/** The kernel. */
class Kernel
{
  public:
    using InitFn = std::function<void(Kernel &, Process &)>;

    Kernel(snp::Machine &machine, const core::CvmLayout &layout,
           KernelConfig config);
    ~Kernel();

    /** Boot entry for the BSP (VCPU 0). */
    snp::GuestEntry bspEntry();
    /** Boot entry for a hotplugged AP. */
    snp::GuestEntry apEntry(uint32_t vcpu);

    /** The "init program": the workload driver run after boot. */
    void setInit(InitFn fn) { init_ = std::move(fn); }

    /**
     * Fleet worker body run by each hotplugged AP after its bring-up
     * handshake (multicore fleet mode). Runs in the AP's guest fiber on
     * the AP's host thread with that VCPU bound as the thread's kernel
     * CPU, so syscalls and enclave sessions issued from it use the
     * AP's own GHCB/IDCB/rings.
     */
    using WorkerFn = std::function<void(Kernel &, snp::Vcpu &, uint32_t)>;
    void setWorkerMain(WorkerFn fn) { workerMain_ = std::move(fn); }

    /**
     * Bind @p cpu as the calling host thread's kernel CPU: kernel
     * entry points invoked on this thread resolve cpu() to it instead
     * of the BSP. Pass nullptr to unbind.
     */
    static void bindWorkerCpu(snp::Vcpu *cpu);

    // ---- Syscall interface (used by the SDK environments) ----

    int64_t syscall(Process &proc, uint32_t no, const uint64_t args[6]);

    // ---- Kernel services ----

    /**
     * @p light_as: give the process a supervisor identity map bounded
     * to the kernel image (fleet sessions; see AddressSpace) instead of
     * all physical memory.
     */
    Process &makeProcess(const std::string &comm, bool light_as = false);
    /**
     * Tear a finished process down and return its memory — remaining
     * user data frames, then the whole page-table tree — to the frame
     * allocator. The classic kernel never bothered (processes lived for
     * the whole VM); fleet sessions churn thousands of processes, so
     * their ~dozen frames each must come back. The enclave (if any)
     * must already be destroyed. Invalidates @p proc.
     */
    void reapProcess(Process &proc);
    snp::Vcpu &cpu();
    bool booted() const { return booted_; }
    const KernelStats &stats() const { return stats_; }
    AuditSubsystem &audit() { return audit_; }
    RamFs &fs() { return fs_; }
    NetStack &net() { return net_; }
    FrameAllocator &frames() { return *frames_; }
    const FrameAllocator &frames() const { return *frames_; }
    const KernelConfig &config() const { return config_; }
    const core::CvmLayout &layout() const { return layout_; }

    /** Buffered kernel console (printk + fd 1/2 writes). */
    const std::string &console() const { return console_; }

    // ---- §5.3 delegation clients ----

    // Request and reply share @p msg: the reply overwrites the request
    // in place so the ~3.2 KB message block is never copied through the
    // call chain.
    void callMonitor(core::IdcbMessage &msg);
    void callService(core::IdcbMessage &msg);

    /**
     * Batched transport (§11): queue the call in this VCPU's VeilOp
     * submission ring when it is deferrable and batching is legal here,
     * falling back to the sync path otherwise. A queued call returns
     * with status Ok optimistically; the real status arrives with its
     * completion (a failed deferred op halts with attribution). With
     * serviceBatching disabled this is exactly callService/callMonitor.
     */
    void callServiceBatched(core::IdcbMessage &msg);

    /** Batched audit: records queued in this VCPU's ring, not yet flushed. */
    uint64_t auditRingPending(uint32_t vcpu) const;

    /** VeilOps queued in this VCPU's submission ring, not yet drained. */
    uint64_t opRingPending(uint32_t vcpu) const;

    /** Drain barrier: doorbell + harvest until the op ring is empty. */
    void opRingBarrier();

    /** Page-state change through the batched transport (test/teardown
     *  use; production call sites that consume ordering stay sync). */
    void pageStateChangeAsync(snp::Gpa page, bool shared);

    /** Boot an additional VCPU (hotplug) through VeilMon. */
    bool bootVcpu(uint32_t vcpu);
    bool vcpuOnline(uint32_t vcpu) const { return onlineVcpus_.count(vcpu); }

    // ---- §6.1 module loading (load_module / free_module hooks) ----

    /** Load a signed VKO image; returns handle or -errno. */
    int64_t loadModule(const Bytes &image);
    int64_t unloadModule(int64_t handle);
    /** Execute the module entry (exec-checked fetch + banner print). */
    int64_t invokeModule(int64_t handle);
    snp::Gva moduleEntry(int64_t handle) const;
    snp::Gpa moduleText(int64_t handle) const;

    // ---- §6.2 enclave driver ----

    int64_t enclaveCreate(Process &proc, VeilEnclaveCreateArgs &args);
    int64_t enclaveDestroy(Process &proc);
    /** §13: seal the process's enclave as a copy-on-write template. */
    int64_t enclaveSnapshot(Process &proc, VeilSnapshotArgs &args);
    /** §13: instantiate a CoW clone of a sealed template. */
    int64_t enclaveClone(Process &proc, VeilCloneArgs &args);
    /** §13: drop the kernel's reference on a sealed template. */
    int64_t enclaveSnapshotRelease(uint64_t snapshotId);
    /** Memory-pressure path: evict one enclave page to "disk". */
    int64_t enclaveFreePage(Process &proc, snp::Gva va);
    /** #PF handler path: restore an evicted page / sync a lazy map. */
    int64_t enclaveHandleFault(Process &proc, snp::Gva va);
    /** Scheduler hook: select the enclave GHCB before entering (§6.2). */
    void prepEnclaveRun(Process &proc);
    /** Back in kernel context after an enclave session. */
    void finishEnclaveRun(Process &proc);

    /** Kernel text/data ranges (for KCI and attack tests). */
    snp::Gpa textLo() const { return textLo_; }
    snp::Gpa textHi() const { return textHi_; }
    snp::Gpa dataLo() const { return dataLo_; }
    snp::Gpa dataHi() const { return dataHi_; }
    snp::Gva idtHandler() const { return idtHandlerVa_; }

    /** Orderly shutdown (Terminate hypercall). */
    void terminate(uint64_t status);

    /**
     * Compromised-kernel model for security experiments: rewrite
     * syscall results before they are returned (e.g. IAGO attacks [37]
     * returning enclave-interior pointers from mmap).
     */
    using SyscallTamper = std::function<int64_t(uint32_t no, int64_t ret)>;
    void setSyscallTamper(SyscallTamper fn) { tamper_ = std::move(fn); }

  private:
    void bspMain(snp::Vcpu &cpu);
    void validateAllMemoryNative(snp::Vcpu &cpu);
    /** The calling thread's kernel CPU (worker binding, else the BSP);
     *  nullptr before boot. */
    snp::Vcpu *curCpu() const;
    /** Append to the kernel console (spinlocked in multicore mode). */
    void conAppend(const std::string &s);
    void pageStateChange(snp::Gpa page, bool shared);
    void auditHook(Process &proc, uint32_t no, const uint64_t args[6]);
    uint64_t syscallBaseCost(uint32_t no) const;

    // ---- Batched audit logging (group commit, DESIGN.md §9) ----
    enum class AuditFlushTrigger { Size, Deadline, Barrier };
    /// Host-side producer view of one VCPU's shared ring; the shared
    /// header in guest memory is kept in sync on every append/flush.
    struct AuditRingState
    {
        uint64_t head = 0;          ///< producer index (monotonic)
        uint64_t pending = 0;       ///< head - flushed tail
        uint64_t producerDrops = 0; ///< ring-full drops (mirrors header)
        uint64_t oldestTsc = 0;     ///< TSC when the oldest record queued
        bool initialized = false;   ///< header written to guest memory
    };
    void auditRingAppend(const std::string &rec);
    void auditRingFlush(AuditFlushTrigger trigger);
    bool auditFlushAllowed() const;
    void auditMaybeDeadlineFlush();

    // ---- Batched VeilOp submission (exit-less service calls, §11) ----
    enum class OpFlushTrigger { Size, Deadline, Barrier };
    /// Producer view of one VCPU's submission ring + consumer view of
    /// its completion ring; the shared headers are kept in sync.
    struct OpRingState
    {
        uint64_t head = 0;        ///< submission producer index (monotonic)
        uint64_t pending = 0;     ///< head - drained tail
        uint64_t submitted = 0;   ///< total ops ever queued (== next seq)
        uint64_t harvested = 0;   ///< completions consumed (cpl tail)
        uint64_t oldestTsc = 0;   ///< TSC when the oldest op queued
        bool initialized = false; ///< headers written to guest memory
    };
    bool opDeferrable(uint32_t op) const;
    bool opBatchingLegal() const;
    /// Queue one call; false when it must go sync (ring full with flush
    /// impossible, oversized payload, batching off). On success the
    /// submission sequence number is stored in *seq_out.
    bool opSubmit(const core::IdcbMessage &msg, uint32_t *seq_out = nullptr);
    void opRingFlush(OpFlushTrigger trigger);
    void opHarvestCompletions();
    void opMaybeDeadlineFlush();
    void opCompletionArrived(const core::VeilOpCompletion &cpl);

    // Syscall bodies.
    int64_t sysOpen(Process &p, snp::Gva path, int flags);
    int64_t sysClose(Process &p, int fd);
    int64_t sysRead(Process &p, int fd, snp::Gva buf, uint64_t len,
                    std::optional<uint64_t> at);
    int64_t sysWrite(Process &p, int fd, snp::Gva buf, uint64_t len,
                     std::optional<uint64_t> at);
    int64_t sysLseek(Process &p, int fd, int64_t off, int whence);
    int64_t sysStat(Process &p, snp::Gva path, snp::Gva out);
    int64_t sysFstat(Process &p, int fd, snp::Gva out);
    int64_t sysMmap(Process &p, snp::Gva addr, uint64_t len, int prot,
                    int flags, int fd);
    int64_t sysMunmap(Process &p, snp::Gva addr, uint64_t len);
    int64_t sysMprotect(Process &p, snp::Gva addr, uint64_t len, int prot);
    int64_t sysSocket(Process &p, int family, int type);
    int64_t sysBind(Process &p, int fd, snp::Gva addr_gva);
    int64_t sysListen(Process &p, int fd, int backlog);
    int64_t sysConnect(Process &p, int fd, snp::Gva addr_gva);
    int64_t sysAccept(Process &p, int fd);
    int64_t sysSendto(Process &p, int fd, snp::Gva buf, uint64_t len);
    int64_t sysRecvfrom(Process &p, int fd, snp::Gva buf, uint64_t len);
    int64_t sysIoctl(Process &p, int fd, uint64_t cmd, snp::Gva arg);
    int64_t sysUnlink(Process &p, snp::Gva path);
    int64_t sysRename(Process &p, snp::Gva oldp, snp::Gva newp);
    int64_t sysMkdir(Process &p, snp::Gva path);
    int64_t sysFtruncate(Process &p, int fd, uint64_t len);
    int64_t sysClockGettime(Process &p, snp::Gva out);

    snp::Machine &machine_;
    core::CvmLayout layout_;
    KernelConfig config_;
    AuditSubsystem audit_;
    RamFs fs_;
    NetStack net_;
    std::unique_ptr<FrameAllocator> frames_;
    std::vector<std::unique_ptr<Process>> processes_;
    InitFn init_;
    snp::Vcpu *cpu_ = nullptr;
    bool booted_ = false;
    KernelStats stats_;
    std::string console_;
    std::set<uint32_t> onlineVcpus_;

    snp::Gpa textLo_ = 0, textHi_ = 0, dataLo_ = 0, dataHi_ = 0;
    snp::Gva idtHandlerVa_ = 0;
    std::map<std::string, uint64_t> kernelSymbols_;

    struct Module
    {
        uint64_t kciHandle = 0; ///< 0 = natively loaded
        snp::Gpa dest = 0;
        uint32_t destPages = 0;
        snp::Gva entry = 0;
    };
    std::map<int64_t, Module> modules_;
    int64_t nextModule_ = 1;

    int nextPid_ = 1;
    uint32_t nextEphemeralPort_ = 40000;
    /// Per-VCPU: the Dom-ENC VMSA the hypervisor's slot currently
    /// points at (the fleet scheduler re-registers on a mismatch).
    std::vector<snp::VmsaId> scheduledEnclaveVmsa_;
    /// Per-VCPU: true while servicing an ocall from a running enclave —
    /// such requests originate *inside* the enclave (§6.2).
    std::vector<uint8_t> inEnclaveSession_;
    std::vector<AuditRingState> auditRings_; ///< one per VCPU
    std::vector<OpRingState> opRings_;       ///< one per VCPU (§11)
    /// EncFreePage post-processing (seal-capture + unmap + frame free)
    /// deferred until the op's completion is harvested. Per VCPU: the
    /// sequence numbers are per-VCPU ring sequences.
    struct DeferredFreePage
    {
        uint32_t seq;
        Process *proc;
        snp::Gva va;
        snp::Gpa pa;
    };
    std::vector<std::vector<DeferredFreePage>> deferredFreePages_;
    /// Per-VCPU: true while an IDCB call is in flight; the timer flush
    /// hook must not start a nested call.
    std::vector<uint8_t> idcbBusy_;
    WorkerFn workerMain_;
    /// Guards console_ and onlineVcpus_ against concurrent fleet
    /// workers (only taken in multicore mode).
    mutable base::Spinlock kernMu_;
    SyscallTamper tamper_;
};

} // namespace veil::kern

#endif // VEIL_KERNEL_KERNEL_HH_
