/**
 * @file
 * In-memory filesystem (ramfs) for the mini kernel: hierarchical
 * directories, regular files with byte contents, POSIX-ish path
 * resolution. File data lives host-side (the simulated "disk"); all
 * data movement into guest memory is charged through the Vcpu copy
 * path at the syscall layer.
 */
#ifndef VEIL_KERNEL_FS_HH_
#define VEIL_KERNEL_FS_HH_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/bytes.hh"

namespace veil::kern {

using Ino = uint64_t;

/** One ramfs inode. */
struct Inode
{
    Ino ino = 0;
    bool dir = false;
    Bytes data;                           ///< file contents
    std::map<std::string, Ino> children; ///< directory entries
    uint32_t nlink = 1;
};

/** The in-memory filesystem. */
class RamFs
{
  public:
    RamFs();

    /** Resolve an absolute path; nullopt if any component is missing. */
    std::optional<Ino> resolve(const std::string &path) const;

    /** Split into (parent inode, leaf name); nullopt if parent missing. */
    std::optional<std::pair<Ino, std::string>>
    resolveParent(const std::string &path) const;

    Inode &inode(Ino ino);
    const Inode &inode(Ino ino) const;
    bool exists(Ino ino) const { return inodes_.count(ino) != 0; }

    /** Create a regular file under @p parent. Fails if name exists. */
    std::optional<Ino> createFile(Ino parent, const std::string &name);
    std::optional<Ino> createDir(Ino parent, const std::string &name);

    /** Remove a file (directories must be empty). */
    bool remove(Ino parent, const std::string &name);

    /** Rename within/between directories. */
    bool rename(Ino old_parent, const std::string &old_name, Ino new_parent,
                const std::string &new_name);

    Ino root() const { return kRoot; }
    size_t inodeCount() const { return inodes_.size(); }

    static constexpr Ino kRoot = 1;

  private:
    std::map<Ino, Inode> inodes_;
    Ino next_ = 2;
};

/** Normalize and split an absolute path into components. */
std::vector<std::string> splitPath(const std::string &path);

} // namespace veil::kern

#endif // VEIL_KERNEL_FS_HH_
