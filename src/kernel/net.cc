#include "kernel/net.hh"

#include "base/log.hh"
#include "kernel/uapi.hh"

namespace veil::kern {

SockId
NetStack::create()
{
    SockId id = next_++;
    Socket s;
    s.id = id;
    sockets_[id] = std::move(s);
    return id;
}

Socket &
NetStack::sock(SockId s)
{
    auto it = sockets_.find(s);
    if (it == sockets_.end())
        panic("NetStack: dangling socket");
    return it->second;
}

int64_t
NetStack::bind(SockId s, uint16_t port)
{
    if (!valid(s))
        return -kEBADF;
    if (listeners_.count(port))
        return -kEADDRINUSE;
    sock(s).boundPort = port;
    return 0;
}

int64_t
NetStack::listen(SockId s, int backlog)
{
    if (!valid(s))
        return -kEBADF;
    Socket &sk = sock(s);
    if (sk.boundPort == 0)
        return -kEINVAL;
    sk.listening = true;
    listeners_[sk.boundPort] = s;
    return 0;
}

int64_t
NetStack::connect(SockId s, uint16_t port)
{
    if (!valid(s))
        return -kEBADF;
    auto it = listeners_.find(port);
    if (it == listeners_.end())
        return -kECONNREFUSED;
    Socket &listener = sock(it->second);

    // Server-side endpoint created on handshake.
    SockId server_side = create();
    Socket &client = sock(s);
    Socket &server = sock(server_side);
    client.peer = server_side;
    server.peer = s;
    listener.backlog.push_back(server_side);
    return 0;
}

int64_t
NetStack::accept(SockId s)
{
    if (!valid(s))
        return -kEBADF;
    Socket &sk = sock(s);
    if (!sk.listening)
        return -kEINVAL;
    if (sk.backlog.empty())
        return -kEAGAIN;
    SockId conn = sk.backlog.front();
    sk.backlog.pop_front();
    return conn;
}

int64_t
NetStack::send(SockId s, const uint8_t *data, size_t len)
{
    if (!valid(s))
        return -kEBADF;
    Socket &sk = sock(s);
    if (sk.peer < 0)
        return sk.peerClosed ? -kEPIPE : -kENOTCONN;
    if (!valid(sk.peer) || sock(sk.peer).peerClosed)
        return -kEPIPE;
    Socket &peer = sock(sk.peer);
    peer.rx.insert(peer.rx.end(), data, data + len);
    return static_cast<int64_t>(len);
}

int64_t
NetStack::recv(SockId s, uint8_t *out, size_t len)
{
    if (!valid(s))
        return -kEBADF;
    Socket &sk = sock(s);
    if (sk.peer < 0 && !sk.peerClosed && sk.rx.empty())
        return -kENOTCONN;
    size_t take = std::min(len, sk.rx.size());
    if (take == 0)
        return sk.peerClosed ? 0 : -kEAGAIN;
    for (size_t i = 0; i < take; ++i) {
        out[i] = sk.rx.front();
        sk.rx.pop_front();
    }
    return static_cast<int64_t>(take);
}

void
NetStack::close(SockId s)
{
    if (!valid(s))
        return;
    Socket &sk = sock(s);
    if (sk.listening)
        listeners_.erase(sk.boundPort);
    if (sk.peer >= 0 && valid(sk.peer)) {
        Socket &peer = sock(sk.peer);
        peer.peerClosed = true;
        peer.peer = -1;
    }
    sockets_.erase(s);
}

size_t
NetStack::pending(SockId s) const
{
    auto it = sockets_.find(s);
    return it == sockets_.end() ? 0 : it->second.rx.size();
}

} // namespace veil::kern
