/**
 * @file
 * Loopback-only TCP socket layer. Non-blocking semantics throughout:
 * recv on an empty stream and accept on an empty backlog return
 * -EAGAIN, which lets client and server workloads run as interleaved
 * state machines on one kernel context (the multi-process analogue of
 * the paper's ApacheBench/memaslap drivers).
 */
#ifndef VEIL_KERNEL_NET_HH_
#define VEIL_KERNEL_NET_HH_

#include <deque>
#include <map>

#include "base/bytes.hh"

namespace veil::kern {

using SockId = int64_t;

/** One socket endpoint. */
struct Socket
{
    SockId id = -1;
    bool listening = false;
    uint16_t boundPort = 0;
    SockId peer = -1; ///< -1 = not connected
    std::deque<uint8_t> rx;
    std::deque<SockId> backlog;
    bool peerClosed = false;
};

/** The loopback network stack. */
class NetStack
{
  public:
    SockId create();

    /** Returns 0 or -errno. */
    int64_t bind(SockId s, uint16_t port);
    int64_t listen(SockId s, int backlog);

    /** Loopback connect: synchronous handshake into the backlog. */
    int64_t connect(SockId s, uint16_t port);

    /** Returns the accepted socket id or -EAGAIN. */
    int64_t accept(SockId s);

    /** Returns bytes queued or -errno (EPIPE if peer closed). */
    int64_t send(SockId s, const uint8_t *data, size_t len);

    /** Returns bytes read, 0 on orderly peer close, or -EAGAIN. */
    int64_t recv(SockId s, uint8_t *out, size_t len);

    void close(SockId s);

    bool valid(SockId s) const { return sockets_.count(s) != 0; }
    Socket &sock(SockId s);

    /** Bytes waiting on @p s (test/introspection helper). */
    size_t pending(SockId s) const;

  private:
    std::map<SockId, Socket> sockets_;
    std::map<uint16_t, SockId> listeners_;
    SockId next_ = 1;
};

} // namespace veil::kern

#endif // VEIL_KERNEL_NET_HH_
