/**
 * @file
 * User-kernel ABI of the mini guest kernel: syscall numbers (Linux
 * x86-64 numbering for the implemented subset), errno values, flags,
 * and user-visible structs. Shared with the enclave SDK, whose syscall
 * specifications are keyed by these numbers.
 */
#ifndef VEIL_KERNEL_UAPI_HH_
#define VEIL_KERNEL_UAPI_HH_

#include <cstdint>

namespace veil::kern {

// ---- errno (returned as -errno from syscalls) ----
constexpr int64_t kEPERM = 1;
constexpr int64_t kENOENT = 2;
constexpr int64_t kEBADF = 9;
constexpr int64_t kEAGAIN = 11;
constexpr int64_t kENOMEM = 12;
constexpr int64_t kEACCES = 13;
constexpr int64_t kEFAULT = 14;
constexpr int64_t kEEXIST = 17;
constexpr int64_t kENOTDIR = 20;
constexpr int64_t kEISDIR = 21;
constexpr int64_t kEINVAL = 22;
constexpr int64_t kEMFILE = 24;
constexpr int64_t kENOSPC = 28;
constexpr int64_t kEPIPE = 32;
constexpr int64_t kENOSYS = 38;
constexpr int64_t kENOTSOCK = 88;
constexpr int64_t kEADDRINUSE = 98;
constexpr int64_t kENOTCONN = 107;
constexpr int64_t kECONNREFUSED = 111;

// ---- syscall numbers (Linux x86-64) ----
enum Sysno : uint32_t {
    kSysRead = 0,
    kSysWrite = 1,
    kSysOpen = 2,
    kSysClose = 3,
    kSysStat = 4,
    kSysFstat = 5,
    kSysPoll = 7, ///< readiness probe (epoll-class; never audited)
    kSysLseek = 8,
    kSysMmap = 9,
    kSysMprotect = 10,
    kSysMunmap = 11,
    kSysIoctl = 16,
    kSysPread64 = 17,
    kSysPwrite64 = 18,
    kSysDup = 32,
    kSysGetpid = 39,
    kSysSocket = 41,
    kSysConnect = 42,
    kSysAccept = 43,
    kSysSendto = 44,
    kSysRecvfrom = 45,
    kSysBind = 49,
    kSysListen = 50,
    kSysFsync = 74,
    kSysFtruncate = 77,
    kSysRename = 82,
    kSysMkdir = 83,
    kSysCreat = 85,
    kSysUnlink = 87,
    kSysClockGettime = 228,
    kSysMaxNumber = 335, ///< numbering ceiling for spec tables
};

// ---- open(2) flags ----
constexpr int kO_RDONLY = 0x0;
constexpr int kO_WRONLY = 0x1;
constexpr int kO_RDWR = 0x2;
constexpr int kO_CREAT = 0x40;
constexpr int kO_TRUNC = 0x200;
constexpr int kO_APPEND = 0x400;

// ---- lseek whence ----
constexpr int kSeekSet = 0;
constexpr int kSeekCur = 1;
constexpr int kSeekEnd = 2;

// ---- mmap(2) ----
constexpr int kPROT_NONE = 0x0;
constexpr int kPROT_READ = 0x1;
constexpr int kPROT_WRITE = 0x2;
constexpr int kPROT_EXEC = 0x4;
constexpr int kMAP_SHARED = 0x01;
constexpr int kMAP_PRIVATE = 0x02;
constexpr int kMAP_FIXED = 0x10;
constexpr int kMAP_ANONYMOUS = 0x20;

// ---- sockets ----
constexpr int kAF_INET = 2;
constexpr int kSOCK_STREAM = 1;
constexpr int kMSG_DONTWAIT = 0x40;

/** sockaddr_in analogue (16 bytes). */
struct SockAddrIn
{
    uint16_t family = 0;
    uint16_t port = 0;   ///< host byte order in this simulator
    uint32_t addr = 0;   ///< 0x7f000001 = loopback
    uint8_t zero[8] = {};
};

/** stat(2) result (simplified). */
struct Stat
{
    uint64_t ino = 0;
    uint64_t size = 0;
    uint32_t mode = 0;
    uint32_t isDir = 0;
};

/** clock_gettime(2) result. */
struct TimeSpec
{
    int64_t sec = 0;
    int64_t nsec = 0;
};

// ---- ioctl: the Veil enclave driver (§7 kernel module) ----
constexpr uint64_t kVeilIocEnclaveCreate = 0xbe110001;
constexpr uint64_t kVeilIocEnclaveDestroy = 0xbe110002;
constexpr uint64_t kVeilIocEnclaveSnapshot = 0xbe110003;
constexpr uint64_t kVeilIocEnclaveClone = 0xbe110004;
constexpr uint64_t kVeilIocSnapshotRelease = 0xbe110005;

/** ioctl argument for enclave creation. */
struct VeilEnclaveCreateArgs
{
    uint64_t vaLo = 0;       ///< enclave region start (already populated)
    uint64_t vaHi = 0;       ///< enclave region end
    uint64_t programId = 0;  ///< host registry id of the enclave binary
    uint64_t ocallGva = 0;   ///< shared ocall block (outside the enclave)
    uint64_t ghcbGva = 0;    ///< where to map the per-thread GHCB
    uint64_t enclaveId = 0;  ///< out: assigned id
    uint64_t vmsaId = 0;     ///< out: Dom-ENC VMSA handle
};

/** ioctl argument for sealing the calling process's enclave (§13). */
struct VeilSnapshotArgs
{
    uint64_t snapshotId = 0; ///< out: sealed template handle
    uint64_t pages = 0;      ///< out: image pages captured
};

/** ioctl argument for instantiating a CoW clone of a snapshot (§13). */
struct VeilCloneArgs
{
    uint64_t snapshotId = 0; ///< template to clone
    uint64_t ghcbGva = 0;    ///< where to map the clone's GHCB
    uint64_t vaLo = 0;       ///< out: enclave window (from the template)
    uint64_t vaHi = 0;       ///< out
    uint64_t enclaveId = 0;  ///< out: assigned id
    uint64_t vmsaId = 0;     ///< out: Dom-ENC VMSA handle
};

} // namespace veil::kern

#endif // VEIL_KERNEL_UAPI_HH_
