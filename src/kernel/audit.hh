/**
 * @file
 * Kernel audit framework (kaudit analogue, §6.3 / §9.2 CS3).
 *
 * auditctl-style rules select which syscalls produce records. Four
 * backends:
 *  - None: auditing disabled (the "native" baseline);
 *  - KauditInMemory: records kept in kernel memory (the paper's
 *    modified Kaudit baseline — Auditd's slow disk writer removed);
 *  - VeilLog: each record is sent to VeilS-LOG through an IDCB +
 *    domain switch *before* the event executes (execute-ahead);
 *  - VeilLogBatched: records accumulate in a per-VCPU shared ring and
 *    are group-committed to VeilS-LOG in one batch call — amortizes
 *    the domain switches at the cost of a bounded loss window.
 */
#ifndef VEIL_KERNEL_AUDIT_HH_
#define VEIL_KERNEL_AUDIT_HH_

#include <set>
#include <string>
#include <vector>

#include "base/bytes.hh"

namespace veil::kern {

enum class AuditBackend {
    None,
    KauditInMemory,
    VeilLog,
    VeilLogBatched,
};

/**
 * The ruleset used by the paper's CS3 experiments ([21, 103, 104]):
 * file creation, network access, and process execution calls (the
 * subset our kernel implements).
 */
std::set<uint32_t> priorWorkAuditRuleset();

/** Formats and locally stores audit records. */
class AuditSubsystem
{
  public:
    void setBackend(AuditBackend b) { backend_ = b; }
    AuditBackend backend() const { return backend_; }

    /** auditctl: replace the rule set. */
    void setRules(std::set<uint32_t> sysnos) { rules_ = std::move(sysnos); }
    bool audited(uint32_t sysno) const { return rules_.count(sysno) != 0; }

    /** Monotonic record sequence number. */
    uint64_t nextSeq() { return ++records_; }

    /** Format a record (pre-execution, per execute-ahead protection). */
    std::string format(int pid, const std::string &comm, uint32_t sysno,
                       const uint64_t args[6], uint64_t tsc,
                       uint64_t seq) const;

    /** Kaudit(IM) backend: append to the in-kernel buffer. */
    void kauditAppend(std::string record);

    uint64_t recordCount() const { return records_; }
    const std::vector<std::string> &kauditBuffer() const { return buffer_; }

  private:
    AuditBackend backend_ = AuditBackend::None;
    std::set<uint32_t> rules_;
    std::vector<std::string> buffer_;
    uint64_t records_ = 0;
};

} // namespace veil::kern

#endif // VEIL_KERNEL_AUDIT_HH_
