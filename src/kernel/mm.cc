#include "kernel/mm.hh"

#include <functional>
#include <mutex>
#include <thread>

#include "base/log.hh"
#include "kernel/uapi.hh"
#include "veil/services/enc.hh" // kUserVaLo/Hi

namespace veil::kern {

using namespace snp;

namespace {
/// Anonymous-mmap allocation cursor start (clear of the SDK's fixed
/// enclave window at 0x2000000).
constexpr Gva kUserMmapBase = 0x4000000;
} // namespace

FrameAllocator::FrameAllocator(Gpa lo, Gpa hi) : lo_(lo), hi_(hi), next_(lo)
{
    ensure(isPageAligned(lo) && isPageAligned(hi) && lo < hi,
           "FrameAllocator: bad range");
}

void
FrameAllocator::setMulticore(bool on)
{
    if (on == mt_)
        return;
    mt_ = on;
    if (on) {
        // Seed stripe 0 with whatever the single-threaded free list
        // accumulated; stripes fill organically from frees after that.
        stripeFree_[0].insert(stripeFree_[0].end(), freeList_.begin(),
                              freeList_.end());
        freeList_.clear();
    } else {
        for (auto &stripe : stripeFree_) {
            freeList_.insert(freeList_.end(), stripe.begin(), stripe.end());
            stripe.clear();
        }
    }
}

size_t
FrameAllocator::stripeFor() const
{
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
           kStripes;
}

Gpa
FrameAllocator::bumpAlloc(size_t pages)
{
    std::lock_guard<base::Spinlock> guard(bumpMu_);
    if (next_ + pages * kPageSize > hi_)
        return kPageSize - 1; // unaligned sentinel: bump region empty
    Gpa f = next_;
    next_ += pages * kPageSize;
    return f;
}

Gpa
FrameAllocator::alloc()
{
    if (!mt_) {
        if (!freeList_.empty()) {
            Gpa f = freeList_.back();
            freeList_.pop_back();
            return f;
        }
        if (next_ >= hi_)
            panic("FrameAllocator: out of physical frames");
        Gpa f = next_;
        next_ += kPageSize;
        return f;
    }
    // Multicore: own stripe first, then the bump region, then steal
    // from other stripes in index order (lock order: one stripe lock
    // at a time, never nested).
    size_t home = stripeFor();
    {
        std::lock_guard<base::Spinlock> guard(stripeMu_[home]);
        if (!stripeFree_[home].empty()) {
            Gpa f = stripeFree_[home].back();
            stripeFree_[home].pop_back();
            return f;
        }
    }
    Gpa f = bumpAlloc(1);
    if (isPageAligned(f))
        return f;
    for (size_t i = 0; i < kStripes; ++i) {
        if (i == home)
            continue;
        std::lock_guard<base::Spinlock> guard(stripeMu_[i]);
        if (!stripeFree_[i].empty()) {
            Gpa stolen = stripeFree_[i].back();
            stripeFree_[i].pop_back();
            return stolen;
        }
    }
    panic("FrameAllocator: out of physical frames");
}

Gpa
FrameAllocator::allocRange(size_t pages)
{
    if (!mt_) {
        // Contiguous ranges come from the bump region only.
        if (next_ + pages * kPageSize > hi_)
            panic("FrameAllocator: out of contiguous frames");
        Gpa f = next_;
        next_ += pages * kPageSize;
        return f;
    }
    Gpa f = bumpAlloc(pages);
    if (!isPageAligned(f))
        panic("FrameAllocator: out of contiguous frames");
    return f;
}

void
FrameAllocator::free(Gpa frame)
{
    ensure(frame >= lo_ && frame < hi_, "FrameAllocator: foreign frame");
    if (!mt_) {
        freeList_.push_back(frame);
        return;
    }
    size_t home = stripeFor();
    std::lock_guard<base::Spinlock> guard(stripeMu_[home]);
    stripeFree_[home].push_back(frame);
}

size_t
FrameAllocator::freeFrames() const
{
    if (!mt_)
        return freeList_.size() + (hi_ - next_) / kPageSize;
    size_t n = 0;
    for (size_t i = 0; i < kStripes; ++i) {
        std::lock_guard<base::Spinlock> guard(stripeMu_[i]);
        n += stripeFree_[i].size();
    }
    std::lock_guard<base::Spinlock> guard(bumpMu_);
    return n + (hi_ - next_) / kPageSize;
}

AddressSpace::AddressSpace(Machine &machine, FrameAllocator &frames)
    : machine_(machine),
      frames_(frames),
      editor_(
          machine.memory(), [this] { return frames_.alloc(); },
          [this](Gpa p) { frames_.free(p); },
          // Kernel page-table edits carry the INVLPG duty: shoot the
          // edited translation out of every VMSA's software TLB.
          [this](Gpa cr3, std::optional<Gva> va) {
              if (va)
                  machine_.tlbInvlpg(cr3, *va);
              else
                  machine_.tlbFlushCr3(cr3);
          }),
      mmapCursor_(kUserMmapBase)
{
    cr3_ = editor_.createRoot();
    buildKernelIdentity();
}

AddressSpace::~AddressSpace()
{
    editor_.destroyRoot(cr3_);
}

void
AddressSpace::buildKernelIdentity()
{
    // Supervisor identity mapping of all physical memory, executable:
    // the kernel relies on VeilS-KCI's RMP W^X, not on NX (§6.1 — the
    // attacker may flip NX bits anyway).
    PageFlags f;
    f.user = false;
    f.write = true;
    f.exec = true;
    for (Gpa p = kPageSize; p < machine_.memory().size(); p += kPageSize)
        editor_.map(cr3_, p, p, f);
}

void
AddressSpace::mapUser(Gva va, Gpa pa, int prot)
{
    PageFlags f;
    f.user = true;
    f.write = prot & kPROT_WRITE;
    f.exec = prot & kPROT_EXEC;
    editor_.map(cr3_, va, pa, f);
}

std::optional<Gpa>
AddressSpace::unmapUser(Gva va)
{
    return editor_.unmap(cr3_, va);
}

void
AddressSpace::protectUser(Gva va, int prot)
{
    PageFlags f;
    f.user = true;
    f.write = prot & kPROT_WRITE;
    f.exec = prot & kPROT_EXEC;
    editor_.protect(cr3_, va, f);
}

std::optional<uint64_t>
AddressSpace::userLeaf(Gva va) const
{
    return editor_.leaf(cr3_, va);
}

VmArea *
AddressSpace::findVma(Gva va)
{
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    if (va >= it->second.lo && va < it->second.hi)
        return &it->second;
    return nullptr;
}

void
AddressSpace::addVma(const VmArea &vma)
{
    vmas_[vma.lo] = vma;
}

void
AddressSpace::removeVma(Gva lo)
{
    vmas_.erase(lo);
}

Gva
AddressSpace::allocUserRange(size_t pages)
{
    Gva va = mmapCursor_;
    mmapCursor_ += pages * kPageSize;
    if (mmapCursor_ > core::kUserVaHi)
        panic("AddressSpace: user VA space exhausted");
    return va;
}

} // namespace veil::kern
