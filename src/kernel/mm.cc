#include "kernel/mm.hh"

#include "base/log.hh"
#include "kernel/uapi.hh"
#include "veil/services/enc.hh" // kUserVaLo/Hi

namespace veil::kern {

using namespace snp;

namespace {
/// Anonymous-mmap allocation cursor start (clear of the SDK's fixed
/// enclave window at 0x2000000).
constexpr Gva kUserMmapBase = 0x4000000;
} // namespace

FrameAllocator::FrameAllocator(Gpa lo, Gpa hi) : lo_(lo), hi_(hi), next_(lo)
{
    ensure(isPageAligned(lo) && isPageAligned(hi) && lo < hi,
           "FrameAllocator: bad range");
}

Gpa
FrameAllocator::alloc()
{
    if (!freeList_.empty()) {
        Gpa f = freeList_.back();
        freeList_.pop_back();
        return f;
    }
    if (next_ >= hi_)
        panic("FrameAllocator: out of physical frames");
    Gpa f = next_;
    next_ += kPageSize;
    return f;
}

Gpa
FrameAllocator::allocRange(size_t pages)
{
    // Contiguous ranges come from the bump region only.
    if (next_ + pages * kPageSize > hi_)
        panic("FrameAllocator: out of contiguous frames");
    Gpa f = next_;
    next_ += pages * kPageSize;
    return f;
}

void
FrameAllocator::free(Gpa frame)
{
    ensure(frame >= lo_ && frame < hi_, "FrameAllocator: foreign frame");
    freeList_.push_back(frame);
}

size_t
FrameAllocator::freeFrames() const
{
    return freeList_.size() + (hi_ - next_) / kPageSize;
}

AddressSpace::AddressSpace(Machine &machine, FrameAllocator &frames)
    : machine_(machine),
      frames_(frames),
      editor_(
          machine.memory(), [this] { return frames_.alloc(); },
          [this](Gpa p) { frames_.free(p); },
          // Kernel page-table edits carry the INVLPG duty: shoot the
          // edited translation out of every VMSA's software TLB.
          [this](Gpa cr3, std::optional<Gva> va) {
              if (va)
                  machine_.tlbInvlpg(cr3, *va);
              else
                  machine_.tlbFlushCr3(cr3);
          }),
      mmapCursor_(kUserMmapBase)
{
    cr3_ = editor_.createRoot();
    buildKernelIdentity();
}

AddressSpace::~AddressSpace()
{
    editor_.destroyRoot(cr3_);
}

void
AddressSpace::buildKernelIdentity()
{
    // Supervisor identity mapping of all physical memory, executable:
    // the kernel relies on VeilS-KCI's RMP W^X, not on NX (§6.1 — the
    // attacker may flip NX bits anyway).
    PageFlags f;
    f.user = false;
    f.write = true;
    f.exec = true;
    for (Gpa p = kPageSize; p < machine_.memory().size(); p += kPageSize)
        editor_.map(cr3_, p, p, f);
}

void
AddressSpace::mapUser(Gva va, Gpa pa, int prot)
{
    PageFlags f;
    f.user = true;
    f.write = prot & kPROT_WRITE;
    f.exec = prot & kPROT_EXEC;
    editor_.map(cr3_, va, pa, f);
}

std::optional<Gpa>
AddressSpace::unmapUser(Gva va)
{
    return editor_.unmap(cr3_, va);
}

void
AddressSpace::protectUser(Gva va, int prot)
{
    PageFlags f;
    f.user = true;
    f.write = prot & kPROT_WRITE;
    f.exec = prot & kPROT_EXEC;
    editor_.protect(cr3_, va, f);
}

std::optional<uint64_t>
AddressSpace::userLeaf(Gva va) const
{
    return editor_.leaf(cr3_, va);
}

VmArea *
AddressSpace::findVma(Gva va)
{
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    if (va >= it->second.lo && va < it->second.hi)
        return &it->second;
    return nullptr;
}

void
AddressSpace::addVma(const VmArea &vma)
{
    vmas_[vma.lo] = vma;
}

void
AddressSpace::removeVma(Gva lo)
{
    vmas_.erase(lo);
}

Gva
AddressSpace::allocUserRange(size_t pages)
{
    Gva va = mmapCursor_;
    mmapCursor_ += pages * kPageSize;
    if (mmapCursor_ > core::kUserVaHi)
        panic("AddressSpace: user VA space exhausted");
    return va;
}

} // namespace veil::kern
