#include "kernel/mm.hh"

#include <functional>
#include <mutex>
#include <thread>

#include "base/log.hh"
#include "kernel/uapi.hh"
#include "snp/fault.hh"
#include "veil/services/enc.hh" // kUserVaLo/Hi

namespace veil::kern {

using namespace snp;

namespace {
/// Anonymous-mmap allocation cursor start (clear of the SDK's fixed
/// enclave window at 0x2000000).
constexpr Gva kUserMmapBase = 0x4000000;

/// Where the calling thread's last successful cross-stripe steal came
/// from. Resuming the scan there instead of at index 0 keeps sustained
/// pressure from rescanning the same drained low-index stripes on
/// every steal (O(stripes) per allocation).
thread_local size_t t_stealCursor = 0;
} // namespace

FrameAllocator::FrameAllocator(Gpa lo, Gpa hi) : lo_(lo), hi_(hi), next_(lo)
{
    ensure(isPageAligned(lo) && isPageAligned(hi) && lo < hi,
           "FrameAllocator: bad range");
}

void
FrameAllocator::setMulticore(bool on)
{
    if (on == mt_)
        return;
    mt_ = on;
    if (on) {
        // Seed stripe 0 with whatever the single-threaded free list
        // accumulated; stripes fill organically from frees after that.
        stripeFree_[0].insert(stripeFree_[0].end(), freeList_.begin(),
                              freeList_.end());
        freeList_.clear();
    } else {
        for (auto &stripe : stripeFree_) {
            freeList_.insert(freeList_.end(), stripe.begin(), stripe.end());
            stripe.clear();
        }
    }
}

size_t
FrameAllocator::stripeFor() const
{
    return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
           kStripes;
}

Gpa
FrameAllocator::bumpAlloc(size_t pages)
{
    std::lock_guard<base::Spinlock> guard(bumpMu_);
    if (next_ + pages * kPageSize > hi_)
        return kPageSize - 1; // unaligned sentinel: bump region empty
    Gpa f = next_;
    next_ += pages * kPageSize;
    return f;
}

void
FrameAllocator::countAlloc(size_t pages)
{
    uint64_t now =
        inUse_.fetch_add(pages, std::memory_order_relaxed) + pages;
    // Racy max-assign is fine: counters are statistics, not sync.
    uint64_t peak = highWater_.load(std::memory_order_relaxed);
    while (now > peak &&
           !highWater_.compare_exchange_weak(peak, now,
                                             std::memory_order_relaxed)) {
    }
}

std::optional<Gpa>
FrameAllocator::tryAllocNoCount()
{
    if (!mt_) {
        if (!freeList_.empty()) {
            Gpa f = freeList_.back();
            freeList_.pop_back();
            return f;
        }
        if (next_ >= hi_)
            return std::nullopt;
        Gpa f = next_;
        next_ += kPageSize;
        return f;
    }
    // Multicore: own stripe first, then the bump region, then steal
    // from other stripes in index order (lock order: one stripe lock
    // at a time, never nested).
    size_t home = stripeFor();
    {
        std::lock_guard<base::Spinlock> guard(stripeMu_[home]);
        if (!stripeFree_[home].empty()) {
            Gpa f = stripeFree_[home].back();
            stripeFree_[home].pop_back();
            return f;
        }
    }
    Gpa f = bumpAlloc(1);
    if (isPageAligned(f))
        return f;
    for (size_t n = 0; n < kStripes; ++n) {
        size_t i = (t_stealCursor + n) % kStripes;
        if (i == home)
            continue;
        std::lock_guard<base::Spinlock> guard(stripeMu_[i]);
        if (!stripeFree_[i].empty()) {
            Gpa stolen = stripeFree_[i].back();
            stripeFree_[i].pop_back();
            t_stealCursor = i;
            steals_.fetch_add(1, std::memory_order_relaxed);
            return stolen;
        }
    }
    return std::nullopt;
}

std::optional<Gpa>
FrameAllocator::tryAlloc()
{
    std::optional<Gpa> f = tryAllocNoCount();
    if (f)
        countAlloc(1);
    return f;
}

Gpa
FrameAllocator::alloc()
{
    std::optional<Gpa> f = tryAllocNoCount();
    if (!f && reclaim_ && reclaim_())
        f = tryAllocNoCount();
    if (!f)
        throw CvmHaltFault("FrameAllocator: out of physical frames "
                           "(in use " +
                           std::to_string(inUse()) + "/" +
                           std::to_string(totalFrames()) + ")");
    countAlloc(1);
    return *f;
}

Gpa
FrameAllocator::allocRange(size_t pages)
{
    if (!mt_) {
        // Contiguous ranges come from the bump region only.
        if (next_ + pages * kPageSize > hi_)
            throw CvmHaltFault("FrameAllocator: out of contiguous frames");
        Gpa f = next_;
        next_ += pages * kPageSize;
        countAlloc(pages);
        return f;
    }
    Gpa f = bumpAlloc(pages);
    if (!isPageAligned(f))
        throw CvmHaltFault("FrameAllocator: out of contiguous frames");
    countAlloc(pages);
    return f;
}

std::optional<Gpa>
FrameAllocator::tryAllocRange(size_t pages, size_t align_pages)
{
    if (align_pages < 1)
        align_pages = 1;
    const Gpa align = Gpa(align_pages) * kPageSize;
    if (!mt_) {
        Gpa base = (next_ + align - 1) / align * align;
        if (base + Gpa(pages) * kPageSize > hi_)
            return std::nullopt;
        for (Gpa p = next_; p < base; p += kPageSize)
            freeList_.push_back(p);
        next_ = base + Gpa(pages) * kPageSize;
        countAlloc(pages);
        return base;
    }
    // MT: carve the aligned range under the bump lock, then return the
    // alignment gap to this thread's home stripe (lock order: bumpMu_
    // released before any stripe lock is taken, one stripe at a time).
    std::vector<Gpa> gap;
    Gpa base;
    {
        std::lock_guard<base::Spinlock> guard(bumpMu_);
        base = (next_ + align - 1) / align * align;
        if (base + Gpa(pages) * kPageSize > hi_)
            return std::nullopt;
        for (Gpa p = next_; p < base; p += kPageSize)
            gap.push_back(p);
        next_ = base + Gpa(pages) * kPageSize;
    }
    if (!gap.empty()) {
        size_t home = stripeFor();
        std::lock_guard<base::Spinlock> guard(stripeMu_[home]);
        stripeFree_[home].insert(stripeFree_[home].end(), gap.begin(),
                                 gap.end());
    }
    countAlloc(pages);
    return base;
}

void
FrameAllocator::free(Gpa frame)
{
    ensure(frame >= lo_ && frame < hi_, "FrameAllocator: foreign frame");
    inUse_.fetch_sub(1, std::memory_order_relaxed);
    if (!mt_) {
        freeList_.push_back(frame);
        return;
    }
    size_t home = stripeFor();
    std::lock_guard<base::Spinlock> guard(stripeMu_[home]);
    stripeFree_[home].push_back(frame);
}

size_t
FrameAllocator::freeFrames() const
{
    if (!mt_)
        return freeList_.size() + (hi_ - next_) / kPageSize;
    size_t n = 0;
    for (size_t i = 0; i < kStripes; ++i) {
        std::lock_guard<base::Spinlock> guard(stripeMu_[i]);
        n += stripeFree_[i].size();
    }
    std::lock_guard<base::Spinlock> guard(bumpMu_);
    return n + (hi_ - next_) / kPageSize;
}

AddressSpace::AddressSpace(Machine &machine, FrameAllocator &frames,
                           Gpa kernel_map_hi, Gpa kernel_map_lo)
    : machine_(machine),
      frames_(frames),
      editor_(
          machine.memory(), [this] { return frames_.alloc(); },
          [this](Gpa p) { frames_.free(p); },
          // Kernel page-table edits carry the INVLPG duty: shoot the
          // edited translation out of every VMSA's software TLB.
          [this](Gpa cr3, std::optional<Gva> va) {
              if (va)
                  machine_.tlbInvlpg(cr3, *va);
              else
                  machine_.tlbFlushCr3(cr3);
          }),
      mmapCursor_(kUserMmapBase)
{
    cr3_ = editor_.createRoot();
    buildKernelIdentity(kernel_map_lo ? kernel_map_lo : kPageSize,
                        kernel_map_hi ? kernel_map_hi
                                      : machine_.memory().size());
}

AddressSpace::~AddressSpace()
{
    editor_.destroyRoot(cr3_);
}

void
AddressSpace::buildKernelIdentity(Gpa lo, Gpa hi)
{
    // Supervisor identity mapping of physical memory up to @p hi,
    // executable: the kernel relies on VeilS-KCI's RMP W^X, not on NX
    // (§6.1 — the attacker may flip NX bits anyway).
    PageFlags f;
    f.user = false;
    f.write = true;
    f.exec = true;
    const bool huge = machine_.hugePagesEnabled();
    Gpa p = lo;
    while (p < hi) {
        // 2 MiB leaves wherever the identity map allows: GVA==GPA, so a
        // 2 MiB-aligned slot is eligible iff the whole region fits. RMP
        // is still checked per-4 KiB at access time, so mixed-state
        // regions under a huge leaf stay correctly arbitrated.
        if (huge && isPageAligned2m(p) && p + kPageSize2m <= hi) {
            editor_.map2m(cr3_, p, p, f);
            p += kPageSize2m;
        } else {
            editor_.map(cr3_, p, p, f);
            p += kPageSize;
        }
    }
}

void
AddressSpace::mapUser(Gva va, Gpa pa, int prot)
{
    PageFlags f;
    f.user = true;
    f.write = prot & kPROT_WRITE;
    f.exec = prot & kPROT_EXEC;
    editor_.map(cr3_, va, pa, f);
}

std::optional<Gpa>
AddressSpace::unmapUser(Gva va)
{
    return editor_.unmap(cr3_, va);
}

void
AddressSpace::protectUser(Gva va, int prot)
{
    PageFlags f;
    f.user = true;
    f.write = prot & kPROT_WRITE;
    f.exec = prot & kPROT_EXEC;
    editor_.protect(cr3_, va, f);
}

std::optional<uint64_t>
AddressSpace::userLeaf(Gva va) const
{
    return editor_.leaf(cr3_, va);
}

VmArea *
AddressSpace::findVma(Gva va)
{
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    if (va >= it->second.lo && va < it->second.hi)
        return &it->second;
    return nullptr;
}

void
AddressSpace::addVma(const VmArea &vma)
{
    vmas_[vma.lo] = vma;
}

void
AddressSpace::removeVma(Gva lo)
{
    vmas_.erase(lo);
}

Gva
AddressSpace::allocUserRange(size_t pages)
{
    // The cursor is a bump allocator, but MAP_FIXED mappings (a fleet
    // clone pins its ocall block at the template's VA) may sit anywhere
    // in the cursor range — skip past any VMA the candidate overlaps.
    Gva va = mmapCursor_;
    Gva hi = va + pages * kPageSize;
    for (auto it = vmas_.begin(); it != vmas_.end();) {
        if (it->second.hi <= va) {
            ++it;
            continue;
        }
        if (it->second.lo >= hi)
            break;
        va = it->second.hi;
        hi = va + pages * kPageSize;
        ++it;
    }
    mmapCursor_ = hi;
    if (mmapCursor_ > core::kUserVaHi)
        panic("AddressSpace: user VA space exhausted");
    return va;
}

} // namespace veil::kern
