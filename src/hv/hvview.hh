/**
 * @file
 * The hypervisor's view of guest memory. SEV-SNP guarantees the host
 * cannot read or write private CVM memory; this class makes that
 * guarantee *structural* in the simulator — every host-side access is
 * checked against the RMP's shared bit and a violation is a simulator
 * panic (the hardware would have produced ciphertext / #NPF).
 */
#ifndef VEIL_HV_HVVIEW_HH_
#define VEIL_HV_HVVIEW_HH_

#include "snp/ghcb.hh"
#include "snp/machine.hh"

namespace veil::hv {

/** Shared-pages-only accessor for host software. */
class HvView
{
  public:
    explicit HvView(snp::Machine &machine) : machine_(machine) {}

    /** Read from shared guest memory; panics on private pages. */
    void read(snp::Gpa gpa, void *out, size_t len) const;

    /** Write to shared guest memory; panics on private pages. */
    void write(snp::Gpa gpa, const void *data, size_t len);

    snp::Ghcb readGhcb(snp::Gpa gpa) const;
    void writeGhcb(snp::Gpa gpa, const snp::Ghcb &g);

  private:
    void checkShared(snp::Gpa gpa, size_t len) const;

    snp::Machine &machine_;
};

} // namespace veil::hv

#endif // VEIL_HV_HVVIEW_HH_
