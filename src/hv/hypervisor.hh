/**
 * @file
 * The (untrusted) host hypervisor. Mirrors the paper's ~400-line KVM
 * modification (§7): it maintains the VMSAs of newly-created domains,
 * installs hypercall handling for hypervisor-relayed domain switches
 * (§5.2), and redirects automatic interrupt exits taken during enclave
 * execution to DomUNT (§6.2).
 *
 * Policy knobs let security tests play a *malicious* hypervisor:
 * refusing interrupt relay, attempting to touch private memory, etc. —
 * the attacks of Table 2.
 *
 * Execution modes (DESIGN.md §12): with MachineConfig::hostThreads == 0
 * run() is the deterministic single-threaded round-robin relay loop.
 * In multicore mode run() spawns one host thread per VCPU, each driving
 * its own VCPU's relay loop; cross-VCPU state (the VMSA registry, the
 * per-VCPU current-context table, the console, the chaos RNG) is
 * guarded by the mutexes below, and host-side RMP mutations go through
 * the machine's exclusive (safe-point) mechanism.
 */
#ifndef VEIL_HV_HYPERVISOR_HH_
#define VEIL_HV_HYPERVISOR_HH_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "base/spinlock.hh"
#include "base/stat_counter.hh"
#include "chaos/chaos.hh"
#include "hv/hvview.hh"
#include "snp/vcpu.hh"

namespace veil::hv {

/** Values the hypervisor writes into Ghcb::result. */
enum class HvResult : uint64_t {
    Ok = 0,
    Denied = 1,
    /// The context was resumed because an interrupt was redirected to
    /// it, not because its own request completed.
    IntrRedirect = 2,
};

/**
 * Host-side event counters. StatCounter fields are individually
 * relaxed-atomic so concurrent VCPU worker threads can bump them (and
 * printVmStats can read them) without tearing; they are plain counters
 * in effect and cost on the single-threaded path.
 */
struct HvStats
{
    base::StatCounter exits;
    base::StatCounter domainSwitches;
    base::StatCounter deniedSwitches;
    base::StatCounter intrRedirects;
    base::StatCounter pageStateChanges;
    base::StatCounter consoleWrites;
    base::StatCounter vmsaRegistrations;
    base::StatCounter vcpuStarts;
    base::StatCounter chaosInjections; ///< VeilChaos faults injected
};

/** The hypervisor for one machine. */
class Hypervisor
{
  public:
    explicit Hypervisor(snp::Machine &machine);

    snp::Machine &machine() { return machine_; }
    HvView &view() { return view_; }

    // ---- Policy (default = what Veil instructs, §6.2) ----

    /** Relay enclave interrupt exits to DomUNT (true) or force them
     *  back into the enclave context (malicious, halts the CVM). */
    void setRelayInterruptsToUnt(bool relay) { relayIntr_ = relay; }

    /** Only allow DomUNT <-> DomENC switches via this (user-mapped)
     *  GHCB page — the errant-hypercall defense of §6.2. */
    void restrictGhcbToEnclaveSwitches(snp::Gpa ghcb_page);

    // ---- VeilChaos (DESIGN.md §10) ----

    /**
     * Install a fault injector consulted at every relay decision point.
     * nullptr (the default) keeps the relay path byte-for-byte the
     * well-behaved one. The injector must outlive run(). In multicore
     * mode the injector's RNG is serialized behind a spinlock (one
     * stream, arbitrary interleaving — stochastic by design).
     */
    void setFaultInjector(chaos::FaultInjector *injector)
    {
        chaos_ = injector;
    }
    chaos::FaultInjector *faultInjector() { return chaos_; }

    /**
     * Livelock detector for soak runs: run() bails out with
     * RunResult::exitCapHit after this many exits (0 = unlimited).
     * Approximate in multicore mode (workers race past the threshold
     * by at most one exit each).
     */
    void setExitCap(uint64_t cap) { exitCap_ = cap; }

    // ---- VMSA registry (struct vcpu_svm analogue) ----

    void registerVmsa(uint32_t vcpu, snp::Vmpl vmpl, snp::VmsaId id);
    snp::VmsaId lookupVmsa(uint32_t vcpu, snp::Vmpl vmpl) const;

    // ---- Execution ----

    struct RunResult
    {
        bool terminated = false; ///< orderly Terminate hypercall
        uint64_t status = 0;     ///< Terminate status
        bool halted = false;     ///< CVM halted (#NPF etc.)
        bool exitCapHit = false; ///< run() stopped by setExitCap
    };

    /**
     * Run the CVM from its boot VMSA until termination or halt.
     * Single-threaded when the machine is (the deterministic relay
     * loop); otherwise spawns one worker thread per VCPU and joins
     * them all before returning.
     */
    RunResult run(snp::VmsaId boot_vmsa);

    const HvStats &stats() const { return stats_; }
    /** Console text. Read only after run() returns (not synchronized
     *  against in-flight ConsoleWrite relays). */
    const std::string &console() const { return console_; }

  private:
    void handleIntrExit(uint32_t vcpu, snp::VmsaId exiting);
    void handleGhcbExit(uint32_t vcpu, snp::VmsaId exiting);
    void relayNonAutomatic(uint32_t vcpu, snp::VmsaId exiting);
    bool chaosRoll(chaos::FaultSite site, uint32_t vcpu);
    uint64_t chaosPick(uint64_t bound);
    void chaosMaybeRmpFlip(uint32_t vcpu);
    snp::VmsaId chaosPickMisroute(uint32_t vcpu, snp::VmsaId intended);
    bool ghcbEnclaveOnly(snp::Gpa ghcb_gpa) const;

    RunResult runMulticore(snp::VmsaId boot_vmsa);
    void workerLoop(uint32_t vcpu);
    void requestStop();
    bool allVcpusOffline() const;

    /// current_[vcpu] accessors: relaxed-atomic via atomic_ref so
    /// StartVcpu on one worker publishes to the target VCPU's worker.
    snp::VmsaId curGet(uint32_t vcpu) const;
    void curSet(uint32_t vcpu, snp::VmsaId id);

    snp::Machine &machine_;
    HvView view_;
    /// VMSA registry and the restricted-GHCB set, both mutated by GHCB
    /// relays and read on every switch: one shared_mutex covers both.
    mutable std::shared_mutex registryMu_;
    std::map<std::pair<uint32_t, int>, snp::VmsaId> registry_;
    std::set<snp::Gpa> enclaveOnlyGhcbs_;
    std::vector<snp::VmsaId> current_;
    /// Per-VCPU: a doorbell-hinted switch into VMPL1 was granted and
    /// Dom-SRV has not yet switched back (DoorbellDuplicate targeting).
    /// Only ever touched by the owning VCPU's relay path.
    std::vector<uint8_t> doorbellLive_;
    bool relayIntr_ = true;
    std::atomic<bool> terminated_{false};
    std::atomic<uint64_t> status_{0};
    chaos::FaultInjector *chaos_ = nullptr;
    base::Spinlock chaosMu_; ///< serializes the chaos RNG in multicore
    uint64_t exitCap_ = 0;
    std::atomic<bool> exitCapHit_{false};
    HvStats stats_;
    std::mutex consoleMu_;
    std::string console_;

    // Multicore run-loop coordination: offline workers (their VCPU has
    // no current context) wait on startCv_ until a StartVcpu relay
    // brings them online or the run stops. stop_ latches once.
    std::mutex startMu_;
    std::condition_variable startCv_;
    std::atomic<bool> stop_{false};
};

} // namespace veil::hv

#endif // VEIL_HV_HYPERVISOR_HH_
