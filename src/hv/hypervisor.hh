/**
 * @file
 * The (untrusted) host hypervisor. Mirrors the paper's ~400-line KVM
 * modification (§7): it maintains the VMSAs of newly-created domains,
 * installs hypercall handling for hypervisor-relayed domain switches
 * (§5.2), and redirects automatic interrupt exits taken during enclave
 * execution to DomUNT (§6.2).
 *
 * Policy knobs let security tests play a *malicious* hypervisor:
 * refusing interrupt relay, attempting to touch private memory, etc. —
 * the attacks of Table 2.
 */
#ifndef VEIL_HV_HYPERVISOR_HH_
#define VEIL_HV_HYPERVISOR_HH_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chaos/chaos.hh"
#include "hv/hvview.hh"
#include "snp/vcpu.hh"

namespace veil::hv {

/** Values the hypervisor writes into Ghcb::result. */
enum class HvResult : uint64_t {
    Ok = 0,
    Denied = 1,
    /// The context was resumed because an interrupt was redirected to
    /// it, not because its own request completed.
    IntrRedirect = 2,
};

/** Host-side event counters. */
struct HvStats
{
    uint64_t exits = 0;
    uint64_t domainSwitches = 0;
    uint64_t deniedSwitches = 0;
    uint64_t intrRedirects = 0;
    uint64_t pageStateChanges = 0;
    uint64_t consoleWrites = 0;
    uint64_t vmsaRegistrations = 0;
    uint64_t vcpuStarts = 0;
    uint64_t chaosInjections = 0; ///< VeilChaos faults actually injected
};

/** The hypervisor for one machine. */
class Hypervisor
{
  public:
    explicit Hypervisor(snp::Machine &machine);

    snp::Machine &machine() { return machine_; }
    HvView &view() { return view_; }

    // ---- Policy (default = what Veil instructs, §6.2) ----

    /** Relay enclave interrupt exits to DomUNT (true) or force them
     *  back into the enclave context (malicious, halts the CVM). */
    void setRelayInterruptsToUnt(bool relay) { relayIntr_ = relay; }

    /** Only allow DomUNT <-> DomENC switches via this (user-mapped)
     *  GHCB page — the errant-hypercall defense of §6.2. */
    void restrictGhcbToEnclaveSwitches(snp::Gpa ghcb_page);

    // ---- VeilChaos (DESIGN.md §10) ----

    /**
     * Install a fault injector consulted at every relay decision point.
     * nullptr (the default) keeps the relay path byte-for-byte the
     * well-behaved one. The injector must outlive run().
     */
    void setFaultInjector(chaos::FaultInjector *injector)
    {
        chaos_ = injector;
    }
    chaos::FaultInjector *faultInjector() { return chaos_; }

    /**
     * Livelock detector for soak runs: run() bails out with
     * RunResult::exitCapHit after this many exits (0 = unlimited).
     */
    void setExitCap(uint64_t cap) { exitCap_ = cap; }

    // ---- VMSA registry (struct vcpu_svm analogue) ----

    void registerVmsa(uint32_t vcpu, snp::Vmpl vmpl, snp::VmsaId id);
    snp::VmsaId lookupVmsa(uint32_t vcpu, snp::Vmpl vmpl) const;

    // ---- Execution ----

    struct RunResult
    {
        bool terminated = false; ///< orderly Terminate hypercall
        uint64_t status = 0;     ///< Terminate status
        bool halted = false;     ///< CVM halted (#NPF etc.)
        bool exitCapHit = false; ///< run() stopped by setExitCap
    };

    /** Run the CVM from its boot VMSA until termination or halt. */
    RunResult run(snp::VmsaId boot_vmsa);

    const HvStats &stats() const { return stats_; }
    const std::string &console() const { return console_; }

  private:
    void handleIntrExit(uint32_t vcpu, snp::VmsaId exiting);
    void handleGhcbExit(uint32_t vcpu, snp::VmsaId exiting);
    bool chaosRoll(chaos::FaultSite site, uint32_t vcpu);
    void chaosMaybeRmpFlip(uint32_t vcpu);
    snp::VmsaId chaosPickMisroute(uint32_t vcpu, snp::VmsaId intended);

    snp::Machine &machine_;
    HvView view_;
    std::map<std::pair<uint32_t, int>, snp::VmsaId> registry_;
    std::vector<snp::VmsaId> current_;
    /// Per-VCPU: a doorbell-hinted switch into VMPL1 was granted and
    /// Dom-SRV has not yet switched back (DoorbellDuplicate targeting).
    std::vector<uint8_t> doorbellLive_;
    std::set<snp::Gpa> enclaveOnlyGhcbs_;
    bool relayIntr_ = true;
    bool terminated_ = false;
    uint64_t status_ = 0;
    chaos::FaultInjector *chaos_ = nullptr;
    uint64_t exitCap_ = 0;
    HvStats stats_;
    std::string console_;
};

} // namespace veil::hv

#endif // VEIL_HV_HYPERVISOR_HH_
