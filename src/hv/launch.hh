/**
 * @file
 * CVM launch: load the measured boot image, record the launch digest in
 * the PSP, pre-validate the image region, pre-share the boot GHCB, and
 * create the boot VCPU's VMSA at VMPL-0 (§5.1: "the hypervisor creates
 * a single VCPU ... at the highest CVM privilege"; Veil puts VeilMon
 * there, a native CVM puts the kernel there).
 */
#ifndef VEIL_HV_LAUNCH_HH_
#define VEIL_HV_LAUNCH_HH_

#include "hv/hypervisor.hh"

namespace veil::hv {

/** Launch-time parameters. */
struct LaunchParams
{
    /// Measured boot image contents (code + initial data).
    Bytes bootImage;
    /// Where the image is loaded in guest-physical memory.
    snp::Gpa imageBase = 0;
    /// Page backing the boot VMSA.
    snp::Gpa bootVmsaPage = 0;
    /// Pre-shared GHCB page for the boot VCPU.
    snp::Gpa bootGhcb = 0;
    /// Simulated entry point of the boot image.
    snp::GuestEntry bootEntry;
    /// Boot context interrupt masking (true for VeilMon, false for a
    /// native kernel boot).
    bool bootIrqMasked = true;
    /// Additional pages the platform marks hypervisor-shared at launch
    /// (per-VCPU GHCBs configured in the boot image's metadata).
    std::vector<snp::Gpa> extraSharedPages;
    /// Lazy acceptance (unaccepted-memory boot, DESIGN.md §14): leave
    /// pages at/above lazyLo unassigned at launch; the guest accepts
    /// them on demand via PageStateChange-to-private (which performs
    /// the RMPUPDATE assign) + PVALIDATE. Off, the historical
    /// assign-everything launch is byte-identical.
    bool lazyAccept = false;
    snp::Gpa lazyLo = 0;
};

/**
 * Launch the CVM. Assigns all guest pages, loads + measures the boot
 * image, pre-validates its pages for VMPL-0, shares the boot GHCB, and
 * returns the boot VMSA id (already registered with the hypervisor).
 */
snp::VmsaId launchCvm(snp::Machine &machine, Hypervisor &hypervisor,
                      const LaunchParams &params);

} // namespace veil::hv

#endif // VEIL_HV_LAUNCH_HH_
