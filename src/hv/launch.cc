#include "hv/launch.hh"

#include <algorithm>

#include "base/log.hh"
#include "crypto/sha256.hh"

namespace veil::hv {

using namespace snp;

VmsaId
launchCvm(Machine &machine, Hypervisor &hypervisor, const LaunchParams &params)
{
    ensure(isPageAligned(params.imageBase), "launch: unaligned image base");
    ensure(isPageAligned(params.bootVmsaPage), "launch: unaligned VMSA page");
    ensure(isPageAligned(params.bootGhcb), "launch: unaligned GHCB page");
    ensure(params.bootEntry != nullptr, "launch: missing boot entry");
    ensure(!params.bootImage.empty(), "launch: empty boot image");

    GuestMemory &mem = machine.memory();
    RmpTable &rmp = machine.rmp();

    // RMPUPDATE: assign every guest page to this CVM — except, under
    // lazy acceptance, the bulk region at/above lazyLo, which the guest
    // accepts on demand (PSC-to-private + PVALIDATE, DESIGN.md §14).
    Gpa assign_end = params.lazyAccept
                         ? std::min<Gpa>(params.lazyLo, mem.size())
                         : mem.size();
    for (Gpa p = 0; p < assign_end; p += kPageSize)
        rmp.hvAssign(p);

    // LAUNCH_UPDATE: load + measure the boot image; its pages are
    // pre-validated by the platform.
    mem.write(params.imageBase, params.bootImage.data(),
              params.bootImage.size());
    machine.psp().setLaunchDigest(crypto::Sha256::hash(params.bootImage));
    Gpa image_end = pageAlignUp(params.imageBase + params.bootImage.size());
    for (Gpa p = params.imageBase; p < image_end; p += kPageSize)
        rmp.pvalidate(Vmpl::Vmpl0, p, true);

    // Boot VMSA page: validated, then marked as a VMSA.
    rmp.pvalidate(Vmpl::Vmpl0, params.bootVmsaPage, true);
    rmp.rmpadjust(Vmpl::Vmpl0, params.bootVmsaPage, Vmpl::Vmpl1, kPermNone,
                  /*make_vmsa=*/true);

    // Boot GHCB (and any configured extra GHCBs): shared with the host.
    rmp.hvSetShared(params.bootGhcb, true);
    for (Gpa p : params.extraSharedPages)
        rmp.hvSetShared(p, true);

    Vmsa boot;
    boot.vcpuId = 0;
    boot.vmpl = Vmpl::Vmpl0;
    boot.cpl = Cpl::Supervisor;
    boot.page = params.bootVmsaPage;
    boot.ghcbGpa = params.bootGhcb;
    boot.irqMasked = params.bootIrqMasked;
    boot.entry = params.bootEntry;
    VmsaId id = machine.addVmsa(std::move(boot));
    hypervisor.registerVmsa(0, Vmpl::Vmpl0, id);
    return id;
}

} // namespace veil::hv
