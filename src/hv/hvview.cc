#include "hv/hvview.hh"

#include "base/log.hh"

namespace veil::hv {

using namespace snp;

void
HvView::checkShared(Gpa gpa, size_t len) const
{
    Gpa first = pageAlignDown(gpa);
    Gpa last = pageAlignDown(gpa + (len ? len - 1 : 0));
    for (Gpa page = first; page <= last; page += kPageSize) {
        if (!machine_.rmp().isShared(page)) {
            panic(strfmt("hypervisor touched private CVM page 0x%llx "
                         "(SEV-SNP forbids this)",
                         (unsigned long long)page));
        }
    }
}

void
HvView::read(Gpa gpa, void *out, size_t len) const
{
    checkShared(gpa, len);
    machine_.memory().read(gpa, out, len);
}

void
HvView::write(Gpa gpa, const void *data, size_t len)
{
    checkShared(gpa, len);
    machine_.memory().write(gpa, data, len);
}

Ghcb
HvView::readGhcb(Gpa gpa) const
{
    Ghcb g;
    read(gpa, &g, sizeof(g));
    return g;
}

void
HvView::writeGhcb(Gpa gpa, const Ghcb &g)
{
    write(gpa, &g, sizeof(g));
}

} // namespace veil::hv
