#include "hv/hypervisor.hh"

#include "base/log.hh"

namespace veil::hv {

using namespace snp;

Hypervisor::Hypervisor(Machine &machine) : machine_(machine), view_(machine)
{
    current_.assign(machine.config().numVcpus, kInvalidVmsa);
}

void
Hypervisor::restrictGhcbToEnclaveSwitches(Gpa ghcb_page)
{
    enclaveOnlyGhcbs_.insert(pageAlignDown(ghcb_page));
}

void
Hypervisor::registerVmsa(uint32_t vcpu, Vmpl vmpl, VmsaId id)
{
    registry_[{vcpu, vmplIndex(vmpl)}] = id;
    ++stats_.vmsaRegistrations;
}

VmsaId
Hypervisor::lookupVmsa(uint32_t vcpu, Vmpl vmpl) const
{
    auto it = registry_.find({vcpu, vmplIndex(vmpl)});
    return it == registry_.end() ? kInvalidVmsa : it->second;
}

Hypervisor::RunResult
Hypervisor::run(VmsaId boot_vmsa)
{
    const Vmsa &boot = machine_.vmsaState(boot_vmsa);
    registerVmsa(boot.vcpuId, boot.vmpl, boot_vmsa);
    current_.assign(machine_.config().numVcpus, kInvalidVmsa);
    current_[boot.vcpuId] = boot_vmsa;
    terminated_ = false;

    uint32_t n = static_cast<uint32_t>(current_.size());
    uint32_t rr = 0;
    while (!terminated_ && !machine_.halted()) {
        // Round-robin over online VCPUs.
        uint32_t vcpu = n;
        for (uint32_t i = 0; i < n; ++i) {
            uint32_t cand = (rr + i) % n;
            if (current_[cand] != kInvalidVmsa) {
                vcpu = cand;
                break;
            }
        }
        if (vcpu == n)
            break; // all VCPUs offline
        rr = (vcpu + 1) % n;

        VmExit e = machine_.enter(current_[vcpu]);
        machine_.charge(machine_.costs().hvDispatch);
        ++stats_.exits;

        switch (e.reason) {
          case ExitReason::Halted:
            current_[vcpu] = kInvalidVmsa;
            break;
          case ExitReason::NpfHalt:
            return RunResult{false, 0, true};
          case ExitReason::AutomaticIntr:
            handleIntrExit(vcpu, e.vmsa);
            break;
          case ExitReason::NonAutomatic:
            handleGhcbExit(vcpu, e.vmsa);
            break;
        }
    }
    return RunResult{terminated_, status_, machine_.halted()};
}

void
Hypervisor::handleIntrExit(uint32_t vcpu, VmsaId exiting)
{
    const Vmsa &st = machine_.vmsaState(exiting);
    VmsaId target = exiting;

    if (st.vmpl == Vmpl::Vmpl2) {
        // Veil instructs the hypervisor to relay enclave interrupts to
        // DomUNT (§6.2). A malicious host that refuses re-enters the
        // enclave context, where the OS interrupt handler is
        // inaccessible — the CVM halts (Table 2).
        if (relayIntr_) {
            VmsaId unt = lookupVmsa(vcpu, Vmpl::Vmpl3);
            if (unt != kInvalidVmsa) {
                target = unt;
                ++stats_.intrRedirects;
                const Vmsa &unt_state = machine_.vmsaState(unt);
                if (unt_state.ghcbGpa != kNoGhcb) {
                    Ghcb g = view_.readGhcb(unt_state.ghcbGpa);
                    g.result = static_cast<uint64_t>(HvResult::IntrRedirect);
                    view_.writeGhcb(unt_state.ghcbGpa, g);
                }
            }
        }
    }

    machine_.injectVector(target);
    current_[vcpu] = target;
}

void
Hypervisor::handleGhcbExit(uint32_t vcpu, VmsaId exiting)
{
    const Vmsa &st = machine_.vmsaState(exiting);
    if (st.ghcbGpa == kNoGhcb)
        panic("hypervisor: non-automatic exit without a GHCB");

    Ghcb g = view_.readGhcb(st.ghcbGpa);
    auto code = static_cast<GhcbExit>(g.exitCode);
    g.result = static_cast<uint64_t>(HvResult::Ok);

    switch (code) {
      case GhcbExit::DomainSwitch: {
          uint32_t target_vcpu = static_cast<uint32_t>(g.info[0]);
          Vmpl target_vmpl = static_cast<Vmpl>(g.info[1] & 3);
          bool allowed = true;
          if (enclaveOnlyGhcbs_.count(pageAlignDown(st.ghcbGpa)) &&
              target_vmpl != Vmpl::Vmpl2 && target_vmpl != Vmpl::Vmpl3) {
              allowed = false; // §6.2 errant-hypercall defense
          }
          if (target_vcpu != st.vcpuId)
              allowed = false; // switches replicate the *same* VCPU
          VmsaId target = allowed ? lookupVmsa(target_vcpu, target_vmpl)
                                  : kInvalidVmsa;
          if (target == kInvalidVmsa) {
              g.result = static_cast<uint64_t>(HvResult::Denied);
              ++stats_.deniedSwitches;
              machine_.tracer().instantAt(
                  st.vcpuId, vmplIndex(st.vmpl),
                  trace::Category::DeniedSwitch,
                  static_cast<uint64_t>(target_vmpl));
          } else {
              current_[vcpu] = target;
              ++stats_.domainSwitches;
              machine_.tracer().instantAt(
                  st.vcpuId, vmplIndex(st.vmpl),
                  trace::Category::DomainSwitch,
                  static_cast<uint64_t>(target_vmpl));
          }
          break;
      }
      case GhcbExit::RegisterVmsa: {
          uint32_t target_vcpu = static_cast<uint32_t>(g.info[1]);
          Vmpl vmpl = static_cast<Vmpl>(g.info[2] & 3);
          VmsaId id = static_cast<VmsaId>(g.info[3]);
          registerVmsa(target_vcpu, vmpl, id);
          break;
      }
      case GhcbExit::StartVcpu: {
          uint32_t target_vcpu = static_cast<uint32_t>(g.info[0]);
          Vmpl vmpl = static_cast<Vmpl>(g.info[1] & 3);
          VmsaId id = lookupVmsa(target_vcpu, vmpl);
          if (id == kInvalidVmsa || target_vcpu >= current_.size()) {
              g.result = static_cast<uint64_t>(HvResult::Denied);
          } else {
              current_[target_vcpu] = id;
              ++stats_.vcpuStarts;
          }
          break;
      }
      case GhcbExit::PageStateChange: {
          Gpa page = pageAlignDown(g.info[0]);
          bool to_shared = g.info[1] != 0;
          machine_.rmp().hvSetShared(page, to_shared);
          ++stats_.pageStateChanges;
          break;
      }
      case GhcbExit::ConsoleWrite: {
          Gpa buf = g.info[0];
          size_t len = static_cast<size_t>(g.info[1]);
          if (len > kPageSize) {
              g.result = static_cast<uint64_t>(HvResult::Denied);
              break;
          }
          std::string text(len, '\0');
          view_.read(buf, text.data(), len);
          console_ += text;
          ++stats_.consoleWrites;
          break;
      }
      case GhcbExit::Terminate:
        terminated_ = true;
        status_ = g.info[0];
        break;
      case GhcbExit::RestrictGhcb:
        restrictGhcbToEnclaveSwitches(g.info[0]);
        break;
      case GhcbExit::None:
        break;
    }

    view_.writeGhcb(st.ghcbGpa, g);
}

} // namespace veil::hv
