#include "hv/hypervisor.hh"

#include <thread>

#include "base/log.hh"
#include "snp/exclusive.hh"

namespace veil::hv {

using namespace snp;

Hypervisor::Hypervisor(Machine &machine) : machine_(machine), view_(machine)
{
    current_.assign(machine.config().numVcpus, kInvalidVmsa);
    doorbellLive_.assign(machine.config().numVcpus, 0);
}

void
Hypervisor::restrictGhcbToEnclaveSwitches(Gpa ghcb_page)
{
    std::unique_lock<std::shared_mutex> lock(registryMu_);
    enclaveOnlyGhcbs_.insert(pageAlignDown(ghcb_page));
}

bool
Hypervisor::ghcbEnclaveOnly(Gpa ghcb_gpa) const
{
    std::shared_lock<std::shared_mutex> lock(registryMu_);
    return enclaveOnlyGhcbs_.count(pageAlignDown(ghcb_gpa)) != 0;
}

void
Hypervisor::registerVmsa(uint32_t vcpu, Vmpl vmpl, VmsaId id)
{
    {
        std::unique_lock<std::shared_mutex> lock(registryMu_);
        registry_[{vcpu, vmplIndex(vmpl)}] = id;
    }
    ++stats_.vmsaRegistrations;
}

VmsaId
Hypervisor::lookupVmsa(uint32_t vcpu, Vmpl vmpl) const
{
    std::shared_lock<std::shared_mutex> lock(registryMu_);
    auto it = registry_.find({vcpu, vmplIndex(vmpl)});
    return it == registry_.end() ? kInvalidVmsa : it->second;
}

VmsaId
Hypervisor::curGet(uint32_t vcpu) const
{
    return std::atomic_ref<VmsaId>(const_cast<VmsaId &>(current_[vcpu]))
        .load(std::memory_order_acquire);
}

void
Hypervisor::curSet(uint32_t vcpu, VmsaId id)
{
    std::atomic_ref<VmsaId>(current_[vcpu])
        .store(id, std::memory_order_release);
}

bool
Hypervisor::allVcpusOffline() const
{
    for (uint32_t v = 0; v < current_.size(); ++v) {
        if (curGet(v) != kInvalidVmsa)
            return false;
    }
    return true;
}

// ---- VeilChaos (DESIGN.md §10) ----
//
// Every injection below is an action a real malicious hypervisor could
// take with its legitimate authority: scheduling, relay handling, the
// shared GHCB pages, and host-side RMPUPDATE. With chaos_ == nullptr
// none of these paths execute and the relay loop is byte-for-byte the
// well-behaved one (the default-path cycle pins depend on this).
//
// The injector owns one RNG stream; chaosMu_ serializes draws so
// multicore workers share it safely (the *order* of draws is then a
// race — chaos runs in multicore mode are stochastic by design, and
// deterministic replay of a seed is a single-threaded-mode property).

bool
Hypervisor::chaosRoll(chaos::FaultSite site, uint32_t vcpu)
{
    if (chaos_ == nullptr)
        return false;
    bool hit;
    {
        std::lock_guard<base::Spinlock> guard(chaosMu_);
        hit = chaos_->roll(site);
    }
    if (!hit)
        return false;
    ++stats_.chaosInjections;
    machine_.tracer().instantAt(vcpu, 0, trace::Category::FaultInject,
                                static_cast<uint64_t>(site));
    return true;
}

uint64_t
Hypervisor::chaosPick(uint64_t bound)
{
    std::lock_guard<base::Spinlock> guard(chaosMu_);
    return chaos_->pick(bound);
}

void
Hypervisor::chaosMaybeRmpFlip(uint32_t vcpu)
{
    if (chaos_ == nullptr)
        return;
    const chaos::FaultPlan &plan = chaos_->plan();
    if (plan.rmpFlipHi <= plan.rmpFlipLo)
        return;
    if (!chaosRoll(chaos::FaultSite::RmpFlip, vcpu))
        return;
    uint64_t pages = (plan.rmpFlipHi - plan.rmpFlipLo) / kPageSize;
    Gpa page = plan.rmpFlipLo + chaosPick(pages) * kPageSize;
    RmpTable &rmp = machine_.rmp();
    // RMPUPDATE on a VMSA page is architecturally rejected, and flipping
    // an already-shared page is a no-op; the budget is spent regardless.
    if (rmp.isVmsaPage(page) || rmp.isShared(page))
        return;
    // What the host now sees of a once-private page is ciphertext: the
    // flip re-keys the page. Model that by scrambling the backing bytes
    // (deterministically, from the chaos stream). The guest never reads
    // them either — its C-bit still says private, so its next access
    // faults (snp/rmp.cc). The flip and the scramble run under the
    // machine's exclusive section so no VCPU thread is mid-access while
    // the page changes identity (the real RMPUPDATE + TLB-shootdown
    // completion protocol).
    std::vector<uint8_t> junk(kPageSize);
    for (auto &b : junk)
        b = static_cast<uint8_t>(chaosPick(256));
    machine_.exclusive([&] {
        rmp.hvSetShared(page, true);
        machine_.memory().write(page, junk.data(), junk.size());
    });
}

VmsaId
Hypervisor::chaosPickMisroute(uint32_t vcpu, VmsaId intended)
{
    // Misroute only to the protected-service loops (VMPL-0/1): those
    // re-check their IDCBs on every entry and switch straight back when
    // nothing is pending, so the fault models the hypervisor scheduling
    // the wrong replica rather than corrupting an unrelated protocol.
    VmsaId candidates[2];
    size_t n = 0;
    {
        std::shared_lock<std::shared_mutex> lock(registryMu_);
        for (int vmpl = 0; vmpl <= 1; ++vmpl) {
            auto it = registry_.find({vcpu, vmpl});
            if (it != registry_.end() && it->second != intended)
                candidates[n++] = it->second;
        }
    }
    if (n == 0)
        return kInvalidVmsa;
    return candidates[chaosPick(n)];
}

/**
 * The NonAutomatic (VMGEXIT) relay decision point, shared by both run
 * loops: chaos may delay, drop, or duplicate the relay around the real
 * GHCB handling, then roll an RMP flip.
 */
void
Hypervisor::relayNonAutomatic(uint32_t vcpu, VmsaId exiting)
{
    if (chaos_ == nullptr) {
        handleGhcbExit(vcpu, exiting);
        return;
    }
    if (chaosRoll(chaos::FaultSite::RelayDelay, vcpu))
        machine_.charge(chaos_->delayCycles());
    if (chaosRoll(chaos::FaultSite::RelayDrop, vcpu)) {
        // Swallowed: the context is re-entered with its armed
        // kGhcbNoResult sentinel intact and re-issues.
    } else {
        handleGhcbExit(vcpu, exiting);
        if (chaosRoll(chaos::FaultSite::RelayDuplicate, vcpu)) {
            // Handle the same GHCB request twice; every request
            // is idempotent at the hypervisor (same routing,
            // same registry writes, same page-state).
            handleGhcbExit(vcpu, exiting);
        }
    }
    chaosMaybeRmpFlip(vcpu);
}

Hypervisor::RunResult
Hypervisor::run(VmsaId boot_vmsa)
{
    if (machine_.multicore())
        return runMulticore(boot_vmsa);

    const Vmsa &boot = machine_.vmsaState(boot_vmsa);
    registerVmsa(boot.vcpuId, boot.vmpl, boot_vmsa);
    current_.assign(machine_.config().numVcpus, kInvalidVmsa);
    current_[boot.vcpuId] = boot_vmsa;
    terminated_.store(false, std::memory_order_relaxed);

    uint32_t n = static_cast<uint32_t>(current_.size());
    uint32_t rr = 0;
    while (!terminated_.load(std::memory_order_relaxed) &&
           !machine_.halted()) {
        // Round-robin over online VCPUs.
        uint32_t vcpu = n;
        for (uint32_t i = 0; i < n; ++i) {
            uint32_t cand = (rr + i) % n;
            if (current_[cand] != kInvalidVmsa) {
                vcpu = cand;
                break;
            }
        }
        if (vcpu == n)
            break; // all VCPUs offline
        rr = (vcpu + 1) % n;

        if (exitCap_ != 0 && stats_.exits >= exitCap_) {
            // Livelock detector for chaos soaks: a correct guest either
            // makes progress or halts with an attributed reason long
            // before any sane cap.
            return RunResult{false, 0, false, true};
        }

        // A hostile scheduler may deschedule the VCPU thread at any
        // charge boundary. Single-threaded, the preemption is a
        // deterministic simulated stall drawn from the chaos stream.
        if (chaos_ != nullptr &&
            chaosRoll(chaos::FaultSite::ThreadPreempt, vcpu)) {
            machine_.charge(chaos_->delayCycles());
        }

        // A hostile scheduler may deliver unsolicited vectors to
        // whichever context it is about to resume.
        if (chaos_ != nullptr &&
            chaosRoll(chaos::FaultSite::SpuriousIntr, vcpu)) {
            machine_.injectVector(current_[vcpu]);
        }

        VmExit e = machine_.enter(current_[vcpu]);
        machine_.charge(machine_.costs().hvDispatch);
        ++stats_.exits;

        switch (e.reason) {
          case ExitReason::Halted:
            current_[vcpu] = kInvalidVmsa;
            break;
          case ExitReason::NpfHalt:
            return RunResult{false, 0, true};
          case ExitReason::AutomaticIntr:
            handleIntrExit(vcpu, e.vmsa);
            break;
          case ExitReason::NonAutomatic:
            relayNonAutomatic(vcpu, e.vmsa);
            break;
        }
    }
    return RunResult{terminated_.load(std::memory_order_relaxed),
                     status_.load(std::memory_order_relaxed),
                     machine_.halted()};
}

Hypervisor::RunResult
Hypervisor::runMulticore(VmsaId boot_vmsa)
{
    const Vmsa &boot = machine_.vmsaState(boot_vmsa);
    registerVmsa(boot.vcpuId, boot.vmpl, boot_vmsa);
    current_.assign(machine_.config().numVcpus, kInvalidVmsa);
    current_[boot.vcpuId] = boot_vmsa;
    terminated_.store(false, std::memory_order_relaxed);
    exitCapHit_.store(false, std::memory_order_relaxed);
    stop_.store(false, std::memory_order_relaxed);

    // Guest trace contexts must exist before any worker can touch them:
    // the tracer's per-VMSA contexts are indexed without locks on the
    // assumption that the vector never reallocates under a worker.
    machine_.tracer().presizeGuest(machine_.vmsaCount());

    uint32_t n = machine_.config().numVcpus;
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (uint32_t v = 0; v < n; ++v)
        workers.emplace_back([this, v] { workerLoop(v); });
    for (std::thread &t : workers)
        t.join();

    return RunResult{terminated_.load(std::memory_order_acquire),
                     status_.load(std::memory_order_relaxed),
                     machine_.halted(),
                     exitCapHit_.load(std::memory_order_relaxed)};
}

void
Hypervisor::requestStop()
{
    // Lock-then-notify so a worker between its predicate check and its
    // cv wait cannot miss the stop. Never call this from inside an
    // exclusive section: a quiescent worker waking from startCv_ must
    // be able to finish endQuiescent() without us holding startMu_.
    {
        std::lock_guard<std::mutex> guard(startMu_);
        stop_.store(true, std::memory_order_release);
    }
    startCv_.notify_all();
}

/**
 * One VCPU's relay loop on its own host thread: the multicore analogue
 * of the round-robin body in run(). The worker binds to its VCPU's TSC
 * shard (so charge() is thread-local and hits safe-points), relays
 * exits for whatever context is current on this VCPU, and parks on
 * startCv_ while the VCPU is offline — leaving the safe-point running
 * set first, so exclusive sections never wait on a parked worker.
 */
void
Hypervisor::workerLoop(uint32_t vcpu)
{
    machine_.bindThread(vcpu);
    ExclusiveCoordinator *excl = machine_.exclusiveCoordinator();

    while (!stop_.load(std::memory_order_acquire)) {
        VmsaId id = curGet(vcpu);
        if (id == kInvalidVmsa) {
            std::unique_lock<std::mutex> lk(startMu_);
            if (stop_.load(std::memory_order_acquire) ||
                curGet(vcpu) != kInvalidVmsa) {
                continue;
            }
            excl->beginQuiescent();
            startCv_.wait(lk, [&] {
                return stop_.load(std::memory_order_acquire) ||
                       curGet(vcpu) != kInvalidVmsa;
            });
            // Drop startMu_ before rejoining the running set:
            // endQuiescent blocks on any in-flight exclusive section,
            // and other workers need startMu_ to stop/start VCPUs in
            // the meantime.
            lk.unlock();
            excl->endQuiescent();
            continue;
        }

        if (exitCap_ != 0 && stats_.exits >= exitCap_) {
            exitCapHit_.store(true, std::memory_order_relaxed);
            requestStop();
            break;
        }

        // Multicore ThreadPreempt is a *real* preemption: yield the
        // host thread at the charge boundary and let the OS scheduler
        // pick the interleaving (stochastic, unlike the single-threaded
        // deterministic stall).
        if (chaos_ != nullptr &&
            chaosRoll(chaos::FaultSite::ThreadPreempt, vcpu)) {
            std::this_thread::yield();
        }
        if (chaos_ != nullptr &&
            chaosRoll(chaos::FaultSite::SpuriousIntr, vcpu)) {
            machine_.injectVector(id);
        }

        VmExit e = machine_.enter(id);
        machine_.charge(machine_.costs().hvDispatch);
        ++stats_.exits;

        switch (e.reason) {
          case ExitReason::Halted:
            curSet(vcpu, kInvalidVmsa);
            if (allVcpusOffline())
                requestStop();
            break;
          case ExitReason::NpfHalt:
            requestStop();
            break;
          case ExitReason::AutomaticIntr:
            handleIntrExit(vcpu, e.vmsa);
            break;
          case ExitReason::NonAutomatic:
            relayNonAutomatic(vcpu, e.vmsa);
            break;
        }

        if (terminated_.load(std::memory_order_acquire) ||
            machine_.halted()) {
            requestStop();
        }
    }

    machine_.unbindThread();
}

void
Hypervisor::handleIntrExit(uint32_t vcpu, VmsaId exiting)
{
    const Vmsa &st = machine_.vmsaState(exiting);
    VmsaId target = exiting;

    if (st.vmpl == Vmpl::Vmpl2) {
        // Veil instructs the hypervisor to relay enclave interrupts to
        // DomUNT (§6.2). A malicious host that refuses re-enters the
        // enclave context, where the OS interrupt handler is
        // inaccessible — the CVM halts (Table 2).
        if (relayIntr_) {
            VmsaId unt = lookupVmsa(vcpu, Vmpl::Vmpl3);
            if (unt != kInvalidVmsa) {
                target = unt;
                ++stats_.intrRedirects;
                const Vmsa &unt_state = machine_.vmsaState(unt);
                if (unt_state.ghcbGpa != kNoGhcb) {
                    Ghcb g = view_.readGhcb(unt_state.ghcbGpa);
                    g.result = static_cast<uint64_t>(HvResult::IntrRedirect);
                    view_.writeGhcb(unt_state.ghcbGpa, g);
                }
            }
        }
    }

    machine_.injectVector(target);
    curSet(vcpu, target);
}

void
Hypervisor::handleGhcbExit(uint32_t vcpu, VmsaId exiting)
{
    const Vmsa &st = machine_.vmsaState(exiting);
    if (st.ghcbGpa == kNoGhcb)
        panic("hypervisor: non-automatic exit without a GHCB");

    Ghcb g = view_.readGhcb(st.ghcbGpa);
    auto code = static_cast<GhcbExit>(g.exitCode);
    g.result = static_cast<uint64_t>(HvResult::Ok);

    switch (code) {
      case GhcbExit::DomainSwitch: {
          uint32_t target_vcpu = static_cast<uint32_t>(g.info[0]);
          Vmpl target_vmpl = static_cast<Vmpl>(g.info[1] & 3);
          bool allowed = true;
          if (ghcbEnclaveOnly(st.ghcbGpa) &&
              target_vmpl != Vmpl::Vmpl2 && target_vmpl != Vmpl::Vmpl3) {
              allowed = false; // §6.2 errant-hypercall defense
          }
          if (target_vcpu != st.vcpuId)
              allowed = false; // switches replicate the *same* VCPU
          if (allowed && chaos_ != nullptr &&
              chaosRoll(chaos::FaultSite::SwitchDeny, vcpu)) {
              allowed = false; // hostile denial of a legitimate switch
          }
          bool doorbell = g.info[2] == kGhcbSwitchHintDoorbell;
          if (allowed && doorbell && chaos_ != nullptr &&
              chaosRoll(chaos::FaultSite::DoorbellDrop, vcpu)) {
              // Lost doorbell: the hint is advisory, so the hypervisor
              // may "miss" it. The guest's switch retry/backoff — or
              // Dom-SRV's opportunistic drain — recovers the batch.
              allowed = false;
          }
          VmsaId target = allowed ? lookupVmsa(target_vcpu, target_vmpl)
                                  : kInvalidVmsa;
          if (target != kInvalidVmsa && chaos_ != nullptr &&
              st.vmpl == Vmpl::Vmpl3 && !ghcbEnclaveOnly(st.ghcbGpa) &&
              chaosRoll(chaos::FaultSite::SwitchMisroute, vcpu)) {
              VmsaId alt = chaosPickMisroute(vcpu, target);
              if (alt != kInvalidVmsa)
                  target = alt;
          }
          if (target != kInvalidVmsa && st.vmpl == Vmpl::Vmpl1 &&
              doorbellLive_[vcpu]) {
              // Dom-SRV is returning from a doorbell-hinted entry. A
              // hostile scheduler may replay the doorbell: bounce the
              // return switch straight back into Dom-SRV, which must
              // treat the duplicate as an idempotent (empty) drain.
              doorbellLive_[vcpu] = 0;
              if (chaos_ != nullptr &&
                  chaosRoll(chaos::FaultSite::DoorbellDuplicate, vcpu)) {
                  target = lookupVmsa(vcpu, Vmpl::Vmpl1);
              }
          }
          if (target != kInvalidVmsa && doorbell &&
              target_vmpl == Vmpl::Vmpl1) {
              doorbellLive_[vcpu] = 1;
          }
          if (target == kInvalidVmsa) {
              g.result = static_cast<uint64_t>(HvResult::Denied);
              ++stats_.deniedSwitches;
              machine_.tracer().instantAt(
                  st.vcpuId, vmplIndex(st.vmpl),
                  trace::Category::DeniedSwitch,
                  static_cast<uint64_t>(target_vmpl));
          } else {
              curSet(vcpu, target);
              ++stats_.domainSwitches;
              machine_.tracer().instantAt(
                  st.vcpuId, vmplIndex(st.vmpl),
                  trace::Category::DomainSwitch,
                  static_cast<uint64_t>(target_vmpl));
          }
          break;
      }
      case GhcbExit::RegisterVmsa: {
          uint32_t target_vcpu = static_cast<uint32_t>(g.info[1]);
          Vmpl vmpl = static_cast<Vmpl>(g.info[2] & 3);
          VmsaId id = static_cast<VmsaId>(g.info[3]);
          registerVmsa(target_vcpu, vmpl, id);
          break;
      }
      case GhcbExit::StartVcpu: {
          uint32_t target_vcpu = static_cast<uint32_t>(g.info[0]);
          Vmpl vmpl = static_cast<Vmpl>(g.info[1] & 3);
          VmsaId id = lookupVmsa(target_vcpu, vmpl);
          if (id == kInvalidVmsa || target_vcpu >= current_.size()) {
              g.result = static_cast<uint64_t>(HvResult::Denied);
          } else {
              curSet(target_vcpu, id);
              ++stats_.vcpuStarts;
              if (machine_.multicore()) {
                  // Wake the target VCPU's worker if it is parked
                  // offline. Lock-then-notify pairs with the worker's
                  // predicate re-check under startMu_.
                  { std::lock_guard<std::mutex> guard(startMu_); }
                  startCv_.notify_all();
              }
          }
          break;
      }
      case GhcbExit::PageStateChange: {
          bool to_shared = g.info[1] != 0;
          // Grouped multi-entry form (ghcb.hh): info[2] entries of
          // info[3]-selected size; 0/1 entries is the legacy encoding.
          uint64_t count = g.info[2] > 1 ? g.info[2] : 1;
          bool size2m = g.info[3] != 0;
          Gpa step = size2m ? kPageSize2m : kPageSize;
          Gpa base = size2m ? pageAlignDown2m(g.info[0])
                            : pageAlignDown(g.info[0]);
          // Host-side RMPUPDATE needs the full shootdown-completion
          // protocol: run it as exclusive work so every VCPU thread is
          // parked at a safe point (and will observe the new TLB
          // generation on resume) before the entry changes.
          machine_.exclusive([&] {
              RmpTable &rmp = machine_.rmp();
              for (uint64_t i = 0; i < count; ++i) {
                  Gpa a = base + i * step;
                  if (size2m) {
                      if (!to_shared) {
                          // Acceptance of unaccepted memory: the assign
                          // IS the to-private transition (fresh entries
                          // are already unshared). An assigned-but-
                          // shared region demotes to per-page updates.
                          if (!rmp.isAssigned(a)) {
                              rmp.hvAssign2m(a);
                          } else if (rmp.isShared(a)) {
                              for (size_t j = 0; j < kPagesPer2m; ++j)
                                  rmp.hvSetShared(a + j * kPageSize,
                                                  false);
                          }
                      } else {
                          for (size_t j = 0; j < kPagesPer2m; ++j)
                              rmp.hvSetShared(a + j * kPageSize, true);
                      }
                  } else if (!to_shared && !rmp.isAssigned(a)) {
                      rmp.hvAssign(a);
                  } else {
                      rmp.hvSetShared(a, to_shared);
                  }
              }
          });
          if (count > 1) {
              // Extra entries ride the one exit: charge the per-entry
              // parse/RMPUPDATE cost (never reached on the legacy
              // single-entry path, keeping default cycles untouched).
              machine_.charge(machine_.costs().pscPerEntry * (count - 1));
              ++machine_.stats().pscBatches;
              machine_.stats().pscBatchedPages +=
                  count * (size2m ? kPagesPer2m : 1);
          }
          ++stats_.pageStateChanges;
          break;
      }
      case GhcbExit::ConsoleWrite: {
          Gpa buf = g.info[0];
          size_t len = static_cast<size_t>(g.info[1]);
          if (len > kPageSize) {
              g.result = static_cast<uint64_t>(HvResult::Denied);
              break;
          }
          std::string text(len, '\0');
          view_.read(buf, text.data(), len);
          {
              std::lock_guard<std::mutex> guard(consoleMu_);
              console_ += text;
          }
          ++stats_.consoleWrites;
          break;
      }
      case GhcbExit::Terminate:
        status_.store(g.info[0], std::memory_order_relaxed);
        terminated_.store(true, std::memory_order_release);
        break;
      case GhcbExit::RestrictGhcb:
        restrictGhcbToEnclaveSwitches(g.info[0]);
        break;
      case GhcbExit::None:
        break;
    }

    if (chaos_ != nullptr && chaosRoll(chaos::FaultSite::GhcbTamper, vcpu)) {
        // The GHCB is shared memory the host may scribble at will. The
        // result word is the guest's only completion signal, so tamper
        // with exactly the values that exercise its decision points:
        // a fake denial, a fake redirect, a fake "never handled"
        // sentinel, or arbitrary garbage.
        switch (chaosPick(4)) {
          case 0:
            g.result = static_cast<uint64_t>(HvResult::Denied);
            break;
          case 1:
            g.result = static_cast<uint64_t>(HvResult::IntrRedirect);
            break;
          case 2:
            g.result = kGhcbNoResult;
            break;
          default:
            g.result = chaosPick(~uint64_t(0));
            break;
        }
    }

    view_.writeGhcb(st.ghcbGpa, g);
}

} // namespace veil::hv
