#include "trace/chrome.hh"

#if !defined(VEIL_TRACE_DISABLE)

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>

namespace veil::trace {

namespace {

/**
 * Track id for one (vcpu, vmpl) pair. The host context is tid 0; guest
 * tracks are 1 + vcpu*4 + vmpl so every VCPU's four privilege levels
 * group together in the viewer.
 */
uint64_t
trackId(uint32_t vcpu, uint8_t vmpl)
{
    if (vcpu == kHostVcpu)
        return 0;
    return 1 + uint64_t(vcpu) * 4 + (vmpl & 3);
}

std::string
trackName(uint32_t vcpu, uint8_t vmpl)
{
    if (vcpu == kHostVcpu)
        return "hypervisor";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "vcpu%u/vmpl%u", vcpu, vmpl & 3);
    return buf;
}

void
appendEvent(std::string &out, const Event &e, bool first)
{
    char buf[256];
    uint64_t tid = trackId(e.vcpu, e.vmpl);
    if (e.kind == EventKind::Span) {
        std::snprintf(buf, sizeof(buf),
                      "%s    {\"name\": \"%s\", \"cat\": \"%s\", "
                      "\"ph\": \"X\", \"pid\": 0, \"tid\": %" PRIu64
                      ", \"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                      ", \"args\": {\"arg\": %" PRIu64 ", \"self\": %" PRIu64
                      "}}",
                      first ? "\n" : ",\n", categoryName(e.cat),
                      categoryName(e.cat), tid, e.tsc, e.dur, e.arg, e.self);
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%s    {\"name\": \"%s\", \"cat\": \"%s\", "
                      "\"ph\": \"i\", \"s\": \"t\", \"pid\": 0, "
                      "\"tid\": %" PRIu64 ", \"ts\": %" PRIu64
                      ", \"args\": {\"arg\": %" PRIu64 "}}",
                      first ? "\n" : ",\n", categoryName(e.cat),
                      categoryName(e.cat), tid, e.tsc, e.arg);
    }
    out += buf;
}

} // namespace

std::string
chromeTraceJson(const Tracer &tracer)
{
    char buf[256];
    std::string out = "{\n";
    out += "  \"displayTimeUnit\": \"ns\",\n";

    // Exact attribution block: sums reconcile with the machine TSC.
    out += "  \"veil\": {\n";
    std::snprintf(buf, sizeof(buf),
                  "    \"totalCycles\": %" PRIu64
                  ",\n    \"recordedEvents\": %" PRIu64
                  ",\n    \"droppedEvents\": %" PRIu64 ",\n",
                  tracer.totalCycles(), tracer.recordedEvents(),
                  tracer.droppedEvents());
    out += buf;
    out += "    \"cyclesByCategory\": {";
    bool first = true;
    for (size_t c = 0; c < kCategoryCount; ++c) {
        uint64_t cycles = tracer.cycles(static_cast<Category>(c));
        if (cycles == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%s\n      \"%s\": %" PRIu64,
                      first ? "" : ",",
                      categoryName(static_cast<Category>(c)), cycles);
        out += buf;
        first = false;
    }
    out += first ? "}\n" : "\n    }\n";
    out += "  },\n";

    out += "  \"traceEvents\": [";

    // Track-name metadata first, for every track that has events.
    std::map<uint64_t, std::string> tracks;
    for (size_t ring = 0; ring < tracer.ringCount(); ++ring) {
        for (const Event &e : tracer.ringEvents(ring))
            tracks.emplace(trackId(e.vcpu, e.vmpl),
                           trackName(e.vcpu, e.vmpl));
    }
    first = true;
    for (const auto &[tid, name] : tracks) {
        std::snprintf(buf, sizeof(buf),
                      "%s    {\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 0, \"tid\": %" PRIu64
                      ", \"args\": {\"name\": \"%s\"}}",
                      first ? "\n" : ",\n", tid, name.c_str());
        out += buf;
        first = false;
    }

    for (size_t ring = 0; ring < tracer.ringCount(); ++ring) {
        for (const Event &e : tracer.ringEvents(ring)) {
            appendEvent(out, e, first);
            first = false;
        }
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

bool
writeChromeTrace(const Tracer &tracer, const std::string &path)
{
    std::string doc = chromeTraceJson(tracer);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = written == doc.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace veil::trace

#endif // !VEIL_TRACE_DISABLE
