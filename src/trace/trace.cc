#include "trace/trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace veil::trace {

#if !defined(VEIL_TRACE_DISABLE)
/**
 * Per-thread tracer binding for multicore mode: which tracer the
 * calling worker thread belongs to, its time source (the VCPU's TSC
 * shard), its private host context, and the context currently charged.
 * Single-threaded mode never consults this (cur_/tsc_ play the role).
 */
struct TracerThreadState
{
    const Tracer *owner = nullptr;
    const uint64_t *clock = nullptr;
    Tracer::Ctx *host = nullptr;
    Tracer::Ctx *cur = nullptr;
};

namespace {
thread_local TracerThreadState t_trace;

uint64_t
atomicLoad64(const uint64_t &v)
{
    return std::atomic_ref<uint64_t>(const_cast<uint64_t &>(v))
        .load(std::memory_order_relaxed);
}
} // namespace
#endif // !VEIL_TRACE_DISABLE

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::HostSched:
        return "host-sched";
      case Category::GuestRun:
        return "guest-run";
      case Category::VmEnter:
        return "vmenter";
      case Category::VmgExit:
        return "vmgexit";
      case Category::TimerIntr:
        return "timer-intr";
      case Category::IntrDeliver:
        return "intr-deliver";
      case Category::DomainSwitch:
        return "domain-switch";
      case Category::DeniedSwitch:
        return "denied-switch";
      case Category::Rmpadjust:
        return "rmpadjust";
      case Category::Pvalidate:
        return "pvalidate";
      case Category::Npf:
        return "npf";
      case Category::TlbHit:
        return "tlb-hit";
      case Category::TlbMiss:
        return "tlb-miss";
      case Category::TlbFlush:
        return "tlb-flush";
      case Category::TlbShootdown:
        return "tlb-shootdown";
      case Category::Syscall:
        return "syscall";
      case Category::MonitorReq:
        return "monitor-request";
      case Category::ServiceKci:
        return "service-kci";
      case Category::ServiceEnc:
        return "service-enc";
      case Category::ServiceLog:
        return "service-log";
      case Category::EnclavePageIn:
        return "enclave-page-in";
      case Category::EnclavePageOut:
        return "enclave-page-out";
      case Category::CryptoKeySetup:
        return "crypto-key-setup";
      case Category::AuditFlush:
        return "audit-flush";
      case Category::AuditTruncate:
        return "audit-truncate";
      case Category::FaultInject:
        return "fault-inject";
      case Category::RingFlush:
        return "ring-flush";
      case Category::FleetSched:
        return "fleet-sched";
      case Category::Evict:
        return "evict";
      case Category::kCount:
        break;
    }
    return "unknown";
}

#if !defined(VEIL_TRACE_DISABLE)

namespace {

/** floor(log2(v)) clamped to the histogram bucket range; 0 -> bucket 0. */
size_t
log2Bucket(uint64_t v)
{
    size_t b = 0;
    while (v > 1 && b + 1 < SpanHistogram::kBuckets) {
        v >>= 1;
        ++b;
    }
    return b;
}

} // namespace

void
Tracer::configure(const TraceConfig &config, uint32_t num_vcpus,
                  const uint64_t *tsc)
{
    enabled_ = config.enabled;
    if (const char *env = std::getenv("VEIL_TRACE")) {
        if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
            std::strcmp(env, "false") == 0) {
            enabled_ = false;
        } else if (std::strcmp(env, "on") == 0 ||
                   std::strcmp(env, "1") == 0) {
            enabled_ = true;
        }
    }
    tsc_ = tsc;
    cap_ = config.ringCapacity > 0 ? config.ringCapacity : 1;
    numVcpus_ = num_vcpus;
    if (!enabled_)
        return;
    rings_.resize(num_vcpus + 1);
    for (Ring &r : rings_)
        r.buf.reserve(std::min<size_t>(cap_, 4096));
}

void
Tracer::setMulticore(bool on)
{
    mt_ = on;
    if (on && enabled_) {
        mtHost_.resize(numVcpus_);
        ringLocks_ = std::make_unique<base::Spinlock[]>(
            rings_.empty() ? 1 : rings_.size());
    }
}

void
Tracer::presizeGuest(size_t n)
{
    if (!enabled_)
        return;
    if (guest_.size() < n)
        guest_.resize(n);
}

void
Tracer::bindThread(uint32_t vcpu, const uint64_t *clock)
{
    if (!enabled_ || !mt_)
        return;
    if (mtHost_.size() < numVcpus_)
        mtHost_.resize(numVcpus_);
    Ctx *host = &mtHost_.at(vcpu);
    t_trace.owner = this;
    t_trace.clock = clock;
    t_trace.host = host;
    t_trace.cur = host;
}

void
Tracer::unbindThread()
{
    if (t_trace.owner == this)
        t_trace = TracerThreadState{};
}

uint64_t
Tracer::now() const
{
    if (mt_) {
        const uint64_t *src = tsc_;
        if (t_trace.owner == this && t_trace.clock != nullptr)
            src = t_trace.clock;
        return src != nullptr ? atomicLoad64(*src) : 0;
    }
    return tsc_ != nullptr ? *tsc_ : 0;
}

Tracer::Ctx *
Tracer::currentCtx()
{
    if (mt_ && t_trace.owner == this && t_trace.cur != nullptr)
        return t_trace.cur;
    return cur_;
}

const Tracer::Ctx *
Tracer::currentCtx() const
{
    return const_cast<Tracer *>(this)->currentCtx();
}

size_t
Tracer::ringIdxFor(uint32_t vcpu) const
{
    // Host events (and out-of-range VCPUs, defensively) share the last
    // ring.
    return vcpu < rings_.size() - 1 ? vcpu : rings_.size() - 1;
}

void
Tracer::record(size_t ring_idx, const Event &e)
{
    Ring &ring = rings_[ring_idx];
    if (mt_ && ringLocks_) {
        std::lock_guard<base::Spinlock> guard(ringLocks_[ring_idx]);
        if (ring.buf.size() < cap_) {
            ring.buf.push_back(e);
            return;
        }
        ring.buf[ring.head] = e;
        ring.head = (ring.head + 1) % cap_;
        ++ring.dropped;
        return;
    }
    if (ring.buf.size() < cap_) {
        ring.buf.push_back(e);
        return;
    }
    // Flight recorder: overwrite the oldest event, count the loss.
    ring.buf[ring.head] = e;
    ring.head = (ring.head + 1) % cap_;
    ++ring.dropped;
}

void
Tracer::onChargeMt(uint64_t cycles)
{
    std::atomic_ref<uint64_t>(total_).fetch_add(cycles,
                                                std::memory_order_relaxed);
    Ctx *ctx = currentCtx();
    size_t cat;
    if (ctx->stack.empty()) {
        cat = static_cast<size_t>(ctx->defaultCat);
    } else {
        OpenSpan &top = ctx->stack.back();
        top.self += cycles; // context is thread-private (VCPU affinity)
        cat = static_cast<size_t>(top.cat);
    }
    std::atomic_ref<uint64_t>(cyclesByCat_[cat])
        .fetch_add(cycles, std::memory_order_relaxed);
}

void
Tracer::enterContext(uint32_t vmsa, uint32_t vcpu, uint8_t vmpl)
{
    if (!enabled_)
        return;
    if (mt_ && t_trace.owner == this) {
        // Contexts were pre-sized before workers spawned; a VMSA's
        // context is only ever touched by its VCPU's worker thread.
        if (vmsa >= guest_.size())
            return;
        Ctx &ctx = guest_[vmsa];
        ctx.vcpu = vcpu;
        ctx.vmpl = vmpl;
        ctx.defaultCat = Category::GuestRun;
        t_trace.cur = &ctx;
        return;
    }
    if (vmsa >= guest_.size())
        guest_.resize(vmsa + 1);
    Ctx &ctx = guest_[vmsa];
    ctx.vcpu = vcpu;
    ctx.vmpl = vmpl;
    ctx.defaultCat = Category::GuestRun;
    cur_ = &ctx;
}

void
Tracer::exitContext()
{
    if (!enabled_)
        return;
    if (mt_ && t_trace.owner == this) {
        t_trace.cur = t_trace.host;
        return;
    }
    cur_ = &host_;
}

void
Tracer::instant(Category cat, uint64_t arg)
{
    if (!enabled_)
        return;
    const Ctx *ctx = currentCtx();
    instantAt(ctx->vcpu, ctx->vmpl, cat, arg);
}

void
Tracer::instantAt(uint32_t vcpu, uint8_t vmpl, Category cat, uint64_t arg)
{
    if (!enabled_)
        return;
    Event e;
    e.cat = cat;
    e.kind = EventKind::Instant;
    e.vcpu = vcpu;
    e.vmpl = vmpl;
    e.tsc = now();
    e.arg = arg;
    record(ringIdxFor(vcpu), e);
}

void
Tracer::beginSpan(Category cat, uint64_t arg)
{
    if (!enabled_)
        return;
    currentCtx()->stack.push_back(OpenSpan{cat, now(), arg, 0});
}

void
Tracer::endSpan()
{
    if (!enabled_)
        return;
    Ctx *cur = currentCtx();
    // Tolerate a pop on an empty stack: RAII spans unwinding through a
    // fiber teardown may fire after their context was already switched
    // away (the machine is dying; nothing to record).
    if (cur->stack.empty())
        return;
    OpenSpan top = cur->stack.back();
    cur->stack.pop_back();

    Event e;
    e.cat = top.cat;
    e.kind = EventKind::Span;
    e.vcpu = cur->vcpu;
    e.vmpl = cur->vmpl;
    e.tsc = top.start;
    e.dur = now() - top.start;
    e.self = top.self;
    e.arg = top.arg;
    record(ringIdxFor(cur->vcpu), e);

    SpanHistogram &h = hist_[static_cast<size_t>(top.cat)];
    if (mt_) {
        std::lock_guard<base::Spinlock> guard(histLock_);
        ++h.buckets[log2Bucket(top.self)];
        ++h.count;
        h.sum += top.self;
        if (top.self > h.max)
            h.max = top.self;
        return;
    }
    ++h.buckets[log2Bucket(top.self)];
    ++h.count;
    h.sum += top.self;
    if (top.self > h.max)
        h.max = top.self;
}

void
Tracer::spanAt(uint32_t vcpu, uint8_t vmpl, Category cat, uint64_t t0,
               uint64_t t1, uint64_t arg)
{
    if (!enabled_)
        return;
    Event e;
    e.cat = cat;
    e.kind = EventKind::Span;
    e.vcpu = vcpu;
    e.vmpl = vmpl;
    e.tsc = t0;
    e.dur = t1 >= t0 ? t1 - t0 : 0;
    e.arg = arg;
    record(ringIdxFor(vcpu), e);
}

uint64_t
Tracer::recordedEvents() const
{
    uint64_t n = 0;
    for (const Ring &r : rings_)
        n += r.buf.size() + r.dropped;
    return n;
}

uint64_t
Tracer::droppedEvents() const
{
    uint64_t n = 0;
    for (const Ring &r : rings_)
        n += r.dropped;
    return n;
}

uint64_t
Tracer::ringDropped(size_t ring) const
{
    return ring < rings_.size() ? rings_[ring].dropped : 0;
}

std::vector<Event>
Tracer::ringEvents(size_t ring) const
{
    if (ring >= rings_.size())
        return {};
    const Ring &r = rings_[ring];
    std::vector<Event> out;
    out.reserve(r.buf.size());
    // Once wrapped, head points at the oldest surviving event.
    for (size_t i = 0; i < r.buf.size(); ++i)
        out.push_back(r.buf[(r.head + i) % r.buf.size()]);
    return out;
}

#endif // !VEIL_TRACE_DISABLE

} // namespace veil::trace
