#include "trace/trace.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace veil::trace {

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::HostSched:
        return "host-sched";
      case Category::GuestRun:
        return "guest-run";
      case Category::VmEnter:
        return "vmenter";
      case Category::VmgExit:
        return "vmgexit";
      case Category::TimerIntr:
        return "timer-intr";
      case Category::IntrDeliver:
        return "intr-deliver";
      case Category::DomainSwitch:
        return "domain-switch";
      case Category::DeniedSwitch:
        return "denied-switch";
      case Category::Rmpadjust:
        return "rmpadjust";
      case Category::Pvalidate:
        return "pvalidate";
      case Category::Npf:
        return "npf";
      case Category::TlbHit:
        return "tlb-hit";
      case Category::TlbMiss:
        return "tlb-miss";
      case Category::TlbFlush:
        return "tlb-flush";
      case Category::TlbShootdown:
        return "tlb-shootdown";
      case Category::Syscall:
        return "syscall";
      case Category::MonitorReq:
        return "monitor-request";
      case Category::ServiceKci:
        return "service-kci";
      case Category::ServiceEnc:
        return "service-enc";
      case Category::ServiceLog:
        return "service-log";
      case Category::EnclavePageIn:
        return "enclave-page-in";
      case Category::EnclavePageOut:
        return "enclave-page-out";
      case Category::CryptoKeySetup:
        return "crypto-key-setup";
      case Category::AuditFlush:
        return "audit-flush";
      case Category::AuditTruncate:
        return "audit-truncate";
      case Category::FaultInject:
        return "fault-inject";
      case Category::RingFlush:
        return "ring-flush";
      case Category::kCount:
        break;
    }
    return "unknown";
}

#if !defined(VEIL_TRACE_DISABLE)

namespace {

/** floor(log2(v)) clamped to the histogram bucket range; 0 -> bucket 0. */
size_t
log2Bucket(uint64_t v)
{
    size_t b = 0;
    while (v > 1 && b + 1 < SpanHistogram::kBuckets) {
        v >>= 1;
        ++b;
    }
    return b;
}

} // namespace

void
Tracer::configure(const TraceConfig &config, uint32_t num_vcpus,
                  const uint64_t *tsc)
{
    enabled_ = config.enabled;
    if (const char *env = std::getenv("VEIL_TRACE")) {
        if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
            std::strcmp(env, "false") == 0) {
            enabled_ = false;
        } else if (std::strcmp(env, "on") == 0 ||
                   std::strcmp(env, "1") == 0) {
            enabled_ = true;
        }
    }
    tsc_ = tsc;
    cap_ = config.ringCapacity > 0 ? config.ringCapacity : 1;
    if (!enabled_)
        return;
    rings_.resize(num_vcpus + 1);
    for (Ring &r : rings_)
        r.buf.reserve(std::min<size_t>(cap_, 4096));
}

Tracer::Ring &
Tracer::ringFor(uint32_t vcpu)
{
    // Host events (and out-of-range VCPUs, defensively) share the last
    // ring.
    size_t idx = vcpu < rings_.size() - 1 ? vcpu : rings_.size() - 1;
    return rings_[idx];
}

void
Tracer::record(Ring &ring, const Event &e)
{
    if (ring.buf.size() < cap_) {
        ring.buf.push_back(e);
        return;
    }
    // Flight recorder: overwrite the oldest event, count the loss.
    ring.buf[ring.head] = e;
    ring.head = (ring.head + 1) % cap_;
    ++ring.dropped;
}

void
Tracer::enterContext(uint32_t vmsa, uint32_t vcpu, uint8_t vmpl)
{
    if (!enabled_)
        return;
    if (vmsa >= guest_.size())
        guest_.resize(vmsa + 1);
    Ctx &ctx = guest_[vmsa];
    ctx.vcpu = vcpu;
    ctx.vmpl = vmpl;
    ctx.defaultCat = Category::GuestRun;
    cur_ = &ctx;
}

void
Tracer::exitContext()
{
    if (!enabled_)
        return;
    cur_ = &host_;
}

void
Tracer::instant(Category cat, uint64_t arg)
{
    if (!enabled_)
        return;
    instantAt(cur_->vcpu, cur_->vmpl, cat, arg);
}

void
Tracer::instantAt(uint32_t vcpu, uint8_t vmpl, Category cat, uint64_t arg)
{
    if (!enabled_)
        return;
    Event e;
    e.cat = cat;
    e.kind = EventKind::Instant;
    e.vcpu = vcpu;
    e.vmpl = vmpl;
    e.tsc = now();
    e.arg = arg;
    record(ringFor(vcpu), e);
}

void
Tracer::beginSpan(Category cat, uint64_t arg)
{
    if (!enabled_)
        return;
    cur_->stack.push_back(OpenSpan{cat, now(), arg, 0});
}

void
Tracer::endSpan()
{
    if (!enabled_)
        return;
    // Tolerate a pop on an empty stack: RAII spans unwinding through a
    // fiber teardown may fire after their context was already switched
    // away (the machine is dying; nothing to record).
    if (cur_->stack.empty())
        return;
    OpenSpan top = cur_->stack.back();
    cur_->stack.pop_back();

    Event e;
    e.cat = top.cat;
    e.kind = EventKind::Span;
    e.vcpu = cur_->vcpu;
    e.vmpl = cur_->vmpl;
    e.tsc = top.start;
    e.dur = now() - top.start;
    e.self = top.self;
    e.arg = top.arg;
    record(ringFor(cur_->vcpu), e);

    SpanHistogram &h = hist_[static_cast<size_t>(top.cat)];
    ++h.buckets[log2Bucket(top.self)];
    ++h.count;
    h.sum += top.self;
    if (top.self > h.max)
        h.max = top.self;
}

void
Tracer::spanAt(uint32_t vcpu, uint8_t vmpl, Category cat, uint64_t t0,
               uint64_t t1, uint64_t arg)
{
    if (!enabled_)
        return;
    Event e;
    e.cat = cat;
    e.kind = EventKind::Span;
    e.vcpu = vcpu;
    e.vmpl = vmpl;
    e.tsc = t0;
    e.dur = t1 >= t0 ? t1 - t0 : 0;
    e.arg = arg;
    record(ringFor(vcpu), e);
}

uint64_t
Tracer::recordedEvents() const
{
    uint64_t n = 0;
    for (const Ring &r : rings_)
        n += r.buf.size() + r.dropped;
    return n;
}

uint64_t
Tracer::droppedEvents() const
{
    uint64_t n = 0;
    for (const Ring &r : rings_)
        n += r.dropped;
    return n;
}

uint64_t
Tracer::ringDropped(size_t ring) const
{
    return ring < rings_.size() ? rings_[ring].dropped : 0;
}

std::vector<Event>
Tracer::ringEvents(size_t ring) const
{
    if (ring >= rings_.size())
        return {};
    const Ring &r = rings_[ring];
    std::vector<Event> out;
    out.reserve(r.buf.size());
    // Once wrapped, head points at the oldest surviving event.
    for (size_t i = 0; i < r.buf.size(); ++i)
        out.push_back(r.buf[(r.head + i) % r.buf.size()]);
    return out;
}

#endif // !VEIL_TRACE_DISABLE

} // namespace veil::trace
