/**
 * @file
 * Chrome trace-event JSON exporter for VeilTrace. The output loads in
 * Perfetto / chrome://tracing: one track per VCPU x VMPL (plus a host
 * track), spans as complete ("X") events timed in simulated cycles, and
 * a top-level "veil" object carrying the exact cycle attribution
 * (cyclesByCategory sums to totalCycles) and ring drop counters.
 */
#ifndef VEIL_TRACE_CHROME_HH_
#define VEIL_TRACE_CHROME_HH_

#include <string>

#include "trace/trace.hh"

namespace veil::trace {

#if !defined(VEIL_TRACE_DISABLE)

/** Render the whole trace as one Chrome trace-event JSON document. */
std::string chromeTraceJson(const Tracer &tracer);

/** Write chromeTraceJson to @p path. Returns false on I/O failure. */
bool writeChromeTrace(const Tracer &tracer, const std::string &path);

#else // VEIL_TRACE_DISABLE

inline std::string
chromeTraceJson(const Tracer &)
{
    return "{}";
}

inline bool
writeChromeTrace(const Tracer &, const std::string &)
{
    return false;
}

#endif // VEIL_TRACE_DISABLE

} // namespace veil::trace

#endif // VEIL_TRACE_CHROME_HH_
