#include "trace/metrics.hh"

namespace veil::trace {

uint64_t
HistogramMetric::quantile(double q) const
{
    if (count == 0)
        return 0;
    uint64_t target = static_cast<uint64_t>(q * double(count));
    if (target >= count)
        target = count - 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < log2Buckets.size(); ++b) {
        seen += log2Buckets[b];
        if (seen > target)
            return b == 0 ? 1 : (uint64_t(1) << (b + 1)) - 1;
    }
    return max;
}

void
MetricsRegistry::addCounter(std::string name, uint64_t value,
                            std::string unit)
{
    counters_.push_back(
        Metric{std::move(name), value, std::move(unit)});
}

void
MetricsRegistry::addHistogram(std::string name, const SpanHistogram &h)
{
    HistogramMetric m;
    m.name = std::move(name);
    m.count = h.count;
    m.sum = h.sum;
    m.max = h.max;
    m.log2Buckets.assign(h.buckets, h.buckets + SpanHistogram::kBuckets);
    histograms_.push_back(std::move(m));
}

uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    for (const Metric &m : counters_) {
        if (m.name == name)
            return m.value;
    }
    return 0;
}

void
MetricsRegistry::addTracer(const Tracer &tracer)
{
    if (!tracer.enabled())
        return;
    addCounter("cycles.total", tracer.totalCycles(), "cycles");
    for (size_t c = 0; c < kCategoryCount; ++c) {
        auto cat = static_cast<Category>(c);
        if (tracer.cycles(cat) == 0)
            continue;
        addCounter(std::string("cycles.") + categoryName(cat),
                   tracer.cycles(cat), "cycles");
    }
    addCounter("trace.events", tracer.recordedEvents());
    addCounter("trace.dropped", tracer.droppedEvents());
    for (size_t c = 0; c < kCategoryCount; ++c) {
        auto cat = static_cast<Category>(c);
        const SpanHistogram &h = tracer.histogram(cat);
        if (h.count == 0)
            continue;
        addHistogram(std::string("span.") + categoryName(cat), h);
    }
}

} // namespace veil::trace
