/**
 * @file
 * VeilTrace: deterministic, zero-simulated-cost event tracing and cycle
 * attribution (DESIGN.md §8).
 *
 * The tracer is pure host-side observability. It never charges
 * simulated cycles, never touches guest memory, the RMP, or any VMSA,
 * and consumes the virtual TSC through a read-only pointer — so guest
 * TSC sequences and MachineStats are bit-identical whether tracing is
 * enabled, disabled at runtime (VEIL_TRACE=off), or compiled out
 * entirely (the VEIL_TRACE_DISABLE cmake option). A dedicated
 * equivalence test pins this contract.
 *
 * Model:
 *  - Events land in fixed-capacity per-VCPU ring buffers (plus one host
 *    ring) that overwrite oldest-first; overwritten events are counted
 *    in explicit drop counters — never silently truncated.
 *  - Spans are recorded at close as complete events (start + duration),
 *    so a wrapped ring can never produce an unmatched begin/end pair.
 *  - Every simulated cycle charged while tracing is attributed to
 *    exactly one category: the innermost open span of the execution
 *    context that charged it, or the context's default category
 *    (guest-run / host-sched) when no span is open. Summing the
 *    per-category cycle counters therefore reconciles exactly with the
 *    machine's TSC delta — drops affect only the event timeline, never
 *    the attribution.
 *  - Execution contexts mirror the fiber structure: one per VMSA plus
 *    the hypervisor ("host") context; Machine switches them on
 *    VMENTER/exit, so spans left open across a yield keep accumulating
 *    only their own context's cycles.
 */
#ifndef VEIL_TRACE_TRACE_HH_
#define VEIL_TRACE_TRACE_HH_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <deque>
#include <vector>

#include "base/spinlock.hh"

namespace veil::trace {

/** Event/attribution categories. */
enum class Category : uint8_t {
    HostSched = 0,   ///< hypervisor dispatch loop (default host context)
    GuestRun,        ///< VMSA residency from VMENTER to the next exit
    VmEnter,         ///< VMENTER state restore
    VmgExit,         ///< VMGEXIT / automatic-exit state save
    TimerIntr,       ///< timer interrupt fired
    IntrDeliver,     ///< injected vector delivered through the IDT
    DomainSwitch,    ///< hypervisor-relayed domain switch granted
    DeniedSwitch,    ///< domain switch denied (§6.2 defenses)
    Rmpadjust,       ///< RMPADJUST instruction
    Pvalidate,       ///< PVALIDATE instruction
    Npf,             ///< #NPF that halted the CVM
    TlbHit,          ///< software-TLB lookup hit
    TlbMiss,         ///< software-TLB lookup miss
    TlbFlush,        ///< TLB invalidation event issued
    TlbShootdown,    ///< remote VMSA TLB dropped entries
    Syscall,         ///< guest kernel syscall enter..exit
    MonitorReq,      ///< VeilMon IDCB request dispatch
    ServiceKci,      ///< VeilS-KCI request dispatch
    ServiceEnc,      ///< VeilS-ENC request dispatch
    ServiceLog,      ///< VeilS-LOG request dispatch
    EnclavePageIn,   ///< enclave page restored from sealed storage
    EnclavePageOut,  ///< enclave page sealed out
    CryptoKeySetup,  ///< AES key schedule / HMAC midstate derivation
    AuditFlush,      ///< batched audit ring group-commit (arg = records)
    AuditTruncate,   ///< audit record clamped to transport (arg = size)
    FaultInject,     ///< VeilChaos fault injected by the hypervisor
    RingFlush,       ///< VeilOp ring doorbell/drain (arg = ops, §11)
    FleetSched,      ///< fleet clone/steal/quantum switch (§13)
    Evict,           ///< memory-pressure page evict/restore (§13)
    kCount,
};

constexpr size_t kCategoryCount = static_cast<size_t>(Category::kCount);

/** Stable kebab-case name (used in exports, metrics, and tests). */
const char *categoryName(Category c);

/** Tracing knobs carried inside MachineConfig. */
struct TraceConfig
{
    /// Master switch. The VEIL_TRACE environment variable overrides it
    /// at runtime: "off"/"0"/"false" disable, "on"/"1" force-enable.
    bool enabled = true;
    /// Event capacity of each ring (one ring per VCPU plus one for the
    /// host context). Oldest events are overwritten and counted.
    size_t ringCapacity = 1 << 15;
};

enum class EventKind : uint8_t {
    Instant, ///< point event; dur/self are zero
    Span,    ///< recorded at close: [tsc, tsc+dur), self-cycles in self
};

/** One trace record. */
struct Event
{
    Category cat = Category::HostSched;
    EventKind kind = EventKind::Instant;
    uint8_t vmpl = 0;    ///< VMPL of the owning track (0xff = host)
    uint32_t vcpu = 0;   ///< VCPU of the owning track (0xffffffff = host)
    uint64_t tsc = 0;    ///< virtual-TSC start timestamp
    uint64_t dur = 0;    ///< span wall duration in simulated cycles
    uint64_t self = 0;   ///< span self-attributed cycles (nested excluded)
    uint64_t arg = 0;    ///< category-specific payload (op, gpa, ...)
};

/** Log2-bucketed distribution of span self-cycles for one category. */
struct SpanHistogram
{
    static constexpr size_t kBuckets = 40;
    uint64_t buckets[kBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
};

constexpr uint32_t kHostVcpu = 0xffffffffu;
constexpr uint8_t kHostVmpl = 0xff;

#if !defined(VEIL_TRACE_DISABLE)

/** The per-machine tracer. All methods are no-ops while disabled. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Wire the tracer to its machine: @p tsc is the machine's virtual
     * TSC (read-only), @p num_vcpus sizes the ring set. Applies the
     * VEIL_TRACE environment override.
     */
    void configure(const TraceConfig &config, uint32_t num_vcpus,
                   const uint64_t *tsc);

    bool enabled() const { return enabled_; }

    // ---- Multicore support (DESIGN.md §12) ----
    //
    // Off (the default), nothing below is consulted and every path is
    // byte-identical to the single-threaded tracer. On, each worker
    // thread gets its own host context + clock (bindThread), ring
    // appends take a per-ring spinlock, and shared counters (totals,
    // per-category cycles, histograms) use relaxed atomics — the
    // attribution reconciliation invariant survives, per-VCPU rings
    // stay monotonic in their own virtual time.

    /** Enable thread-safe paths (call before any worker runs). */
    void setMulticore(bool on);
    /** Pre-size guest contexts so enterContext never reallocates while
     *  workers run (call before spawning; @p n = VMSA count). */
    void presizeGuest(size_t n);
    /** Bind the calling worker thread: its VCPU track + time source. */
    void bindThread(uint32_t vcpu, const uint64_t *clock);
    void unbindThread();

    // ---- Context switching (Machine only) ----

    /** Enter guest context @p vmsa (on VMENTER). */
    void enterContext(uint32_t vmsa, uint32_t vcpu, uint8_t vmpl);
    /** Return to the host (hypervisor) context. */
    void exitContext();

    /** Attribute @p cycles to the current context's innermost span. */
    void onCharge(uint64_t cycles)
    {
        if (!enabled_)
            return;
        if (mt_) {
            onChargeMt(cycles);
            return;
        }
        total_ += cycles;
        Ctx &ctx = *cur_;
        if (ctx.stack.empty()) {
            cyclesByCat_[static_cast<size_t>(ctx.defaultCat)] += cycles;
        } else {
            OpenSpan &top = ctx.stack.back();
            top.self += cycles;
            cyclesByCat_[static_cast<size_t>(top.cat)] += cycles;
        }
    }

    // ---- Event recording ----

    /** Point event in the current context. */
    void instant(Category cat, uint64_t arg = 0);
    /** Point event on an explicit (vcpu, vmpl) track. */
    void instantAt(uint32_t vcpu, uint8_t vmpl, Category cat,
                   uint64_t arg = 0);
    /** Open a span in the current context (close with endSpan). */
    void beginSpan(Category cat, uint64_t arg = 0);
    /** Close the current context's innermost span and record it. */
    void endSpan();
    /** Record a pre-measured span [t0, t1) on an explicit track. */
    void spanAt(uint32_t vcpu, uint8_t vmpl, Category cat, uint64_t t0,
                uint64_t t1, uint64_t arg = 0);

    // ---- Results (host-side observability) ----

    uint64_t cycles(Category cat) const
    {
        return cyclesByCat_[static_cast<size_t>(cat)];
    }
    /** Total cycles charged while tracing was enabled. */
    uint64_t totalCycles() const { return total_; }

    uint64_t recordedEvents() const;
    uint64_t droppedEvents() const;

    /** Number of rings (numVcpus + 1; the last one is the host ring). */
    size_t ringCount() const { return rings_.size(); }
    size_t ringCapacity() const { return cap_; }
    uint64_t ringDropped(size_t ring) const;
    /** Chronological (oldest-first) copy of one ring. */
    std::vector<Event> ringEvents(size_t ring) const;

    const SpanHistogram &histogram(Category cat) const
    {
        return hist_[static_cast<size_t>(cat)];
    }

  private:
    struct Ring
    {
        std::vector<Event> buf;
        size_t head = 0;      ///< next overwrite position once full
        uint64_t dropped = 0; ///< events overwritten (flight recorder)
    };

    friend struct TracerThreadState;

    struct OpenSpan
    {
        Category cat;
        uint64_t start;
        uint64_t arg;
        uint64_t self = 0;
    };

    struct Ctx
    {
        uint32_t vcpu = kHostVcpu;
        uint8_t vmpl = kHostVmpl;
        Category defaultCat = Category::HostSched;
        std::vector<OpenSpan> stack;
    };

    uint64_t now() const;
    size_t ringIdxFor(uint32_t vcpu) const;
    void record(size_t ring_idx, const Event &e);
    void onChargeMt(uint64_t cycles);
    Ctx *currentCtx();
    const Ctx *currentCtx() const;

    bool enabled_ = false;
    const uint64_t *tsc_ = nullptr;
    size_t cap_ = 0;
    std::vector<Ring> rings_; ///< [vcpu 0..n-1, host]
    Ctx host_;
    /// Indexed by VmsaId. A deque on purpose: bound worker threads
    /// cache raw Ctx pointers (t_trace.cur), and presizeGuest() must be
    /// able to grow the table mid-run (fleet clones create VMSAs) while
    /// every cached pointer to an existing element stays valid.
    std::deque<Ctx> guest_;
    Ctx *cur_ = &host_;
    uint64_t total_ = 0;
    uint64_t cyclesByCat_[kCategoryCount] = {};
    SpanHistogram hist_[kCategoryCount];
    // ---- Multicore state ----
    bool mt_ = false;
    uint32_t numVcpus_ = 0;
    std::vector<Ctx> mtHost_; ///< per-worker-thread host contexts
    std::unique_ptr<base::Spinlock[]> ringLocks_; ///< one per ring
    base::Spinlock histLock_;
};

#else // VEIL_TRACE_DISABLE

/** Compiled-out tracer: every hook is an empty inline, zero overhead. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    void configure(const TraceConfig &, uint32_t, const uint64_t *) {}
    bool enabled() const { return false; }

    void setMulticore(bool) {}
    void presizeGuest(size_t) {}
    void bindThread(uint32_t, const uint64_t *) {}
    void unbindThread() {}

    void enterContext(uint32_t, uint32_t, uint8_t) {}
    void exitContext() {}
    void onCharge(uint64_t) {}

    void instant(Category, uint64_t = 0) {}
    void instantAt(uint32_t, uint8_t, Category, uint64_t = 0) {}
    void beginSpan(Category, uint64_t = 0) {}
    void endSpan() {}
    void spanAt(uint32_t, uint8_t, Category, uint64_t, uint64_t,
                uint64_t = 0)
    {
    }

    uint64_t cycles(Category) const { return 0; }
    uint64_t totalCycles() const { return 0; }
    uint64_t recordedEvents() const { return 0; }
    uint64_t droppedEvents() const { return 0; }
    size_t ringCount() const { return 0; }
    size_t ringCapacity() const { return 0; }
    uint64_t ringDropped(size_t) const { return 0; }
    std::vector<Event> ringEvents(size_t) const { return {}; }
    const SpanHistogram &histogram(Category) const
    {
        static const SpanHistogram empty;
        return empty;
    }
};

#endif // VEIL_TRACE_DISABLE

/** RAII span: opens on construction, closes (and records) on scope exit. */
class SpanScope
{
  public:
    SpanScope(Tracer &tracer, Category cat, uint64_t arg = 0)
        : tracer_(tracer)
    {
        tracer_.beginSpan(cat, arg);
    }
    ~SpanScope() { tracer_.endSpan(); }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    Tracer &tracer_;
};

} // namespace veil::trace

#endif // VEIL_TRACE_TRACE_HH_
