/**
 * @file
 * Unified counter/histogram registry. Supersedes the hand-rolled
 * MachineStats / cryptoStats printing that each bench used to carry:
 * producers dump their counters into a registry, and one registry-driven
 * printer (bench/common) renders them uniformly in text and JSON.
 *
 * The registry is a pure presentation-layer container — collecting
 * metrics never mutates simulated state, and it works identically in
 * VEIL_TRACE_DISABLE builds (tracer-derived entries are simply absent).
 */
#ifndef VEIL_TRACE_METRICS_HH_
#define VEIL_TRACE_METRICS_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace veil::trace {

/** One named counter. */
struct Metric
{
    std::string name;
    uint64_t value = 0;
    std::string unit;
};

/** One named distribution (log2-bucketed, from SpanHistogram). */
struct HistogramMetric
{
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::vector<uint64_t> log2Buckets;

    double mean() const { return count ? double(sum) / double(count) : 0.0; }
    /** Approximate quantile from the log2 buckets (upper bound). */
    uint64_t quantile(double q) const;
};

/** Ordered collection of counters and histograms. */
class MetricsRegistry
{
  public:
    void addCounter(std::string name, uint64_t value, std::string unit = "");
    void addHistogram(std::string name, const SpanHistogram &h);

    const std::vector<Metric> &counters() const { return counters_; }
    const std::vector<HistogramMetric> &histograms() const
    {
        return histograms_;
    }
    bool empty() const { return counters_.empty() && histograms_.empty(); }

    /** Value of a counter by name (0 if absent; test convenience). */
    uint64_t counter(const std::string &name) const;

    /**
     * Absorb the tracer's cycle attribution: one "cycles.<category>"
     * counter per non-zero category, "cycles.total", event/drop
     * counters, and one "span.<category>" histogram per span category.
     */
    void addTracer(const Tracer &tracer);

  private:
    std::vector<Metric> counters_;
    std::vector<HistogramMetric> histograms_;
};

} // namespace veil::trace

#endif // VEIL_TRACE_METRICS_HH_
