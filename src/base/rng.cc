#include "base/rng.hh"

#include <cstring>

#include "base/log.hh"

namespace veil {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    ensure(bound != 0, "Rng::below: zero bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

uint64_t
Rng::range(uint64_t lo, uint64_t hi)
{
    ensure(lo <= hi, "Rng::range: lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void
Rng::fill(void *out, size_t len)
{
    auto *p = static_cast<uint8_t *>(out);
    while (len >= 8) {
        uint64_t v = next();
        std::memcpy(p, &v, 8);
        p += 8;
        len -= 8;
    }
    if (len > 0) {
        uint64_t v = next();
        std::memcpy(p, &v, len);
    }
}

std::vector<uint8_t>
Rng::bytes(size_t len)
{
    std::vector<uint8_t> out(len);
    fill(out.data(), len);
    return out;
}

} // namespace veil
