/**
 * @file
 * StatCounter: a drop-in replacement for plain `uint64_t` event
 * counters that tolerates concurrent increments from multiple host
 * threads (multicore mode, DESIGN.md §12) without data races.
 *
 * Counters are *statistics*, not synchronization: every mutation and
 * read uses relaxed atomics, so the single-threaded fast path compiles
 * to the same add instruction as before and cycle-pinned tests stay
 * bit-identical. Unlike std::atomic<uint64_t>, StatCounter is copyable
 * (stats structs are snapshotted by value in tests and benches).
 */
#ifndef VEIL_BASE_STAT_COUNTER_HH_
#define VEIL_BASE_STAT_COUNTER_HH_

#include <atomic>
#include <cstdint>

namespace veil::base {

/** Relaxed-atomic, copyable event counter. */
class StatCounter
{
  public:
    constexpr StatCounter() noexcept : v_(0) {}
    constexpr StatCounter(uint64_t v) noexcept : v_(v) {} // NOLINT

    StatCounter(const StatCounter &o) noexcept
        : v_(o.v_.load(std::memory_order_relaxed))
    {
    }
    StatCounter &operator=(const StatCounter &o) noexcept
    {
        v_.store(o.v_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
        return *this;
    }
    StatCounter &operator=(uint64_t v) noexcept
    {
        v_.store(v, std::memory_order_relaxed);
        return *this;
    }

    /** Implicit read so `EXPECT_EQ(stats.exits, 3u)` etc. compile. */
    operator uint64_t() const noexcept // NOLINT
    {
        return v_.load(std::memory_order_relaxed);
    }
    uint64_t value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

    StatCounter &operator++() noexcept
    {
        v_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    uint64_t operator++(int) noexcept
    {
        return v_.fetch_add(1, std::memory_order_relaxed);
    }
    StatCounter &operator+=(uint64_t d) noexcept
    {
        v_.fetch_add(d, std::memory_order_relaxed);
        return *this;
    }
    StatCounter &operator-=(uint64_t d) noexcept
    {
        v_.fetch_sub(d, std::memory_order_relaxed);
        return *this;
    }

  private:
    std::atomic<uint64_t> v_;
};

} // namespace veil::base

#endif // VEIL_BASE_STAT_COUNTER_HH_
