/**
 * @file
 * Small byte-buffer helpers shared across modules: hex encoding,
 * constant-time comparison, and little-endian (de)serialization used by
 * guest-visible structures.
 */
#ifndef VEIL_BASE_BYTES_HH_
#define VEIL_BASE_BYTES_HH_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace veil {

using Bytes = std::vector<uint8_t>;

/** Lower-case hex encoding of @p data. */
std::string hexEncode(const void *data, size_t len);
std::string hexEncode(const Bytes &data);

/** Inverse of hexEncode; throws FatalError on malformed input. */
Bytes hexDecode(const std::string &hex);

/**
 * Constant-time equality. Used for MAC/signature comparison so the
 * simulated services do not exhibit trivially timing-dependent accepts.
 */
bool ctEqual(const void *a, const void *b, size_t len);

/** Append a little-endian integer to a byte vector. */
template <typename T>
void
appendLe(Bytes &out, T value)
{
    for (size_t i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

/** Read a little-endian integer from raw memory. */
template <typename T>
T
loadLe(const uint8_t *p)
{
    T v = 0;
    std::memcpy(&v, p, sizeof(T));
    return v; // Host is little-endian x86-64; documented assumption.
}

/** Write a little-endian integer into raw memory (inverse of loadLe). */
template <typename T>
void
storeLe(uint8_t *p, T value)
{
    std::memcpy(p, &value, sizeof(T)); // Host is little-endian x86-64.
}

/** Append a raw buffer. */
inline void
appendBytes(Bytes &out, const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    out.insert(out.end(), p, p + len);
}

} // namespace veil

#endif // VEIL_BASE_BYTES_HH_
