#include "base/log.hh"

#include <cstdio>
#include <vector>

namespace veil {

namespace {
LogLevel g_threshold = LogLevel::Info;
} // namespace

LogLevel
LogConfig::threshold()
{
    return g_threshold;
}

void
LogConfig::setThreshold(LogLevel level)
{
    g_threshold = level;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
logMessage(LogLevel level, const char *tag, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_threshold))
        return;
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Info, "info", msg);
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, "warn", msg);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Error, "panic", msg);
    throw PanicError(msg);
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal", msg);
    throw FatalError(msg);
}

} // namespace veil
