/**
 * @file
 * Tiny test-and-test-and-set spinlock for short critical sections on
 * multicore hot paths (trace ring appends, chaos rng draws). Meets the
 * BasicLockable requirements so it works with std::lock_guard.
 */
#ifndef VEIL_BASE_SPINLOCK_HH_
#define VEIL_BASE_SPINLOCK_HH_

#include <atomic>

namespace veil::base {

class Spinlock
{
  public:
    void lock() noexcept
    {
        for (;;) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            while (locked_.load(std::memory_order_relaxed)) {
            }
        }
    }
    bool try_lock() noexcept
    {
        return !locked_.exchange(true, std::memory_order_acquire);
    }
    void unlock() noexcept
    {
        locked_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> locked_{false};
};

} // namespace veil::base

#endif // VEIL_BASE_SPINLOCK_HH_
