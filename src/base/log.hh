/**
 * @file
 * Logging and error-reporting primitives for the Veil reproduction.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this codebase), fatal() is for unrecoverable user
 * errors (bad configuration), warn()/inform() are advisory.
 */
#ifndef VEIL_BASE_LOG_HH_
#define VEIL_BASE_LOG_HH_

#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace veil {

/** Severity of a log record. */
enum class LogLevel : int {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4,
};

/**
 * Process-wide log configuration.
 *
 * Tests lower the threshold to Silent to keep output clean; examples and
 * benches leave it at Info.
 */
class LogConfig
{
  public:
    static LogLevel threshold();
    static void setThreshold(LogLevel level);
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a log record if @p level passes the configured threshold. */
void logMessage(LogLevel level, const char *tag, const std::string &msg);

/** Informative status message (never indicates a problem). */
void inform(const std::string &msg);

/** Something looks off but the simulation can continue. */
void warn(const std::string &msg);

/**
 * Exception thrown by panic(): an internal invariant of the simulator or
 * of Veil itself was violated. Tests assert on these.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

/**
 * Exception thrown by fatal(): the caller (user of the library) supplied
 * an impossible configuration or request.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Report an internal bug and throw PanicError. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user error and throw FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Assert an invariant; panics with @p msg on failure. */
inline void
ensure(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace veil

#endif // VEIL_BASE_LOG_HH_
