/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic element of the simulation (workload keys, synthetic
 * file contents, module images) draws from a seeded Rng so that runs are
 * bit-reproducible.
 */
#ifndef VEIL_BASE_RNG_HH_
#define VEIL_BASE_RNG_HH_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace veil {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next 64 uniformly-random bits. */
    uint64_t next();

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Fill @p out with @p len random bytes. */
    void fill(void *out, size_t len);

    /** Convenience: vector of @p len random bytes. */
    std::vector<uint8_t> bytes(size_t len);

  private:
    uint64_t s_[4];
};

} // namespace veil

#endif // VEIL_BASE_RNG_HH_
