#include "base/bytes.hh"

#include "base/log.hh"

namespace veil {

namespace {
const char kHexDigits[] = "0123456789abcdef";

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}
} // namespace

std::string
hexEncode(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(kHexDigits[p[i] >> 4]);
        out.push_back(kHexDigits[p[i] & 0xf]);
    }
    return out;
}

std::string
hexEncode(const Bytes &data)
{
    return hexEncode(data.data(), data.size());
}

Bytes
hexDecode(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        fatal("hexDecode: odd-length input");
    Bytes out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexNibble(hex[i]);
        int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            fatal("hexDecode: invalid hex digit");
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

bool
ctEqual(const void *a, const void *b, size_t len)
{
    const auto *pa = static_cast<const uint8_t *>(a);
    const auto *pb = static_cast<const uint8_t *>(b);
    uint8_t acc = 0;
    for (size_t i = 0; i < len; ++i)
        acc |= static_cast<uint8_t>(pa[i] ^ pb[i]);
    return acc == 0;
}

} // namespace veil
