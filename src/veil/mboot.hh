/**
 * @file
 * vTPM-style measured boot inside VMPL-0 (e-vTPM / SNPGuard
 * architecture): a bank of PCR-like extend-only registers that VeilMon
 * extends at each boot milestone, plus the event log that explains
 * them. The bank lives in monitor (Dom-MON) state — sealed inside the
 * CVM, never exposed to the OS — and its quote (a digest over all
 * registers) is bound into the attestation report's report-data field
 * at channel establishment, so a remote verifier learns not just *what
 * image* was measured at launch but *what boot path* the monitor
 * actually took.
 *
 * Host-side only: extending registers costs zero simulated cycles, so
 * measured boot never perturbs the calibrated cycle model.
 */
#ifndef VEIL_VEIL_MBOOT_HH_
#define VEIL_VEIL_MBOOT_HH_

#include <string>
#include <vector>

#include "crypto/sha256.hh"

namespace veil::core {

/** The measured-boot register bank and event log. */
class MeasuredBoot
{
  public:
    static constexpr size_t kNumPcrs = 8;

    // Register allocation (documented, fixed):
    //  0 — platform: launch digest as recorded by the PSP
    //  1 — config: CVM layout geometry (memory map, VCPU count)
    //  2 — domains: privilege-domain carving results (§5.1)
    //  3 — vcpus: every VMSA replica set created (boot + AP boot)
    //  4 — services: monitor wiring (service/enclave entries)
    static constexpr uint32_t kPcrPlatform = 0;
    static constexpr uint32_t kPcrConfig = 1;
    static constexpr uint32_t kPcrDomains = 2;
    static constexpr uint32_t kPcrVcpus = 3;
    static constexpr uint32_t kPcrServices = 4;

    /** One extend event, for audit/replay. */
    struct Event
    {
        uint32_t pcr;
        std::string label;
        crypto::Digest digest;
    };

    MeasuredBoot();

    /** TPM-style extend: pcr = SHA256(pcr || digest); logged. */
    void extend(uint32_t pcr, const std::string &label,
                const crypto::Digest &digest);

    /** Extend with SHA256(@p data). */
    void extendBytes(uint32_t pcr, const std::string &label,
                     const void *data, size_t len);

    const crypto::Digest &pcr(uint32_t index) const;

    /** Digest over the whole bank — what gets bound into reports. */
    crypto::Digest quote() const;

    const std::vector<Event> &eventLog() const { return log_; }

    /** Replay the event log from zeroed registers; true iff it
     *  reproduces the current bank (log integrity self-check). */
    bool replayMatches() const;

  private:
    std::vector<crypto::Digest> pcrs_;
    std::vector<Event> log_;
};

} // namespace veil::core

#endif // VEIL_VEIL_MBOOT_HH_
