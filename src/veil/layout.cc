#include "veil/layout.hh"

#include "base/log.hh"
#include "veil/proto.hh"

namespace veil::core {

using namespace snp;

Gpa
CvmLayout::osGhcb(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return osGhcbBase + Gpa(vcpu) * kPageSize;
}

Gpa
CvmLayout::monGhcb(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return monGhcbBase + Gpa(vcpu) * kPageSize;
}

Gpa
CvmLayout::srvGhcb(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return srvGhcbBase + Gpa(vcpu) * kPageSize;
}

std::vector<Gpa>
CvmLayout::launchSharedPages() const
{
    std::vector<Gpa> out;
    for (uint32_t v = 0; v < numVcpus; ++v) {
        out.push_back(monGhcb(v));
        out.push_back(srvGhcb(v));
        out.push_back(osGhcb(v));
    }
    return out;
}

Gpa
CvmLayout::osMonIdcb(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return osMonIdcbBase + Gpa(vcpu) * kPageSize;
}

Gpa
CvmLayout::osSrvIdcb(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return osSrvIdcbBase + Gpa(vcpu) * kPageSize;
}

Gpa
CvmLayout::srvMonIdcb(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return srvIdcbBase + Gpa(vcpu) * kPageSize;
}

Gpa
CvmLayout::logRing(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return logRingBase + Gpa(vcpu) * kAuditRingPages * kPageSize;
}

Gpa
CvmLayout::opSubRing(uint32_t vcpu) const
{
    ensure(vcpu < numVcpus, "layout: bad vcpu");
    return opRingBase + Gpa(vcpu) * (kOpRingPages + kOpCplPages) * kPageSize;
}

Gpa
CvmLayout::opCplRing(uint32_t vcpu) const
{
    return opSubRing(vcpu) + Gpa(kOpRingPages) * kPageSize;
}

bool
CvmLayout::inMonRegion(Gpa p) const
{
    return (p >= imageBase && p < imageEnd) || (p >= monBase && p < monEnd);
}

bool
CvmLayout::inSrvRegion(Gpa p) const
{
    return p >= srvBase && p < srvEnd;
}

bool
CvmLayout::inProtectedRegion(Gpa p) const
{
    return inMonRegion(p) || inSrvRegion(p);
}

CvmLayout
CvmLayout::compute(size_t mem_bytes, uint32_t vcpus, size_t image_bytes,
                   size_t log_bytes)
{
    ensure(vcpus >= 1 && vcpus <= 64, "layout: bad vcpu count");
    CvmLayout l;
    l.numVcpus = vcpus;

    Gpa cursor = kPageSize; // page 0 reserved
    l.imageBase = cursor;
    cursor += pageAlignUp(image_bytes);
    l.imageEnd = cursor;

    // Fleet-scale machines (> 64 MiB) get proportionally larger VMSA
    // and Dom-SRV heap pools: a thousand-session clone fleet needs a
    // Dom-ENC VMSA page and protected page-table frames per clone. The
    // classic 64 MiB layout is bit-identical to keep every pinned
    // frame address unchanged (cycle-determinism tests).
    size_t mem_pages = mem_bytes / kPageSize;
    bool fleet_scale = mem_bytes > 64 * 1024 * 1024;
    Gpa vmsa_extra = (fleet_scale ? mem_pages / 16 : 0) * kPageSize;
    Gpa srv_heap_pages = fleet_scale ? mem_pages / 8 : 512;

    l.monBase = cursor;
    l.vmsaPool = cursor;
    // VMSA pool: up to 4 domains per VCPU plus enclave headroom.
    cursor += Gpa(vcpus) * 8 * kPageSize + vmsa_extra;
    l.vmsaPoolEnd = cursor;
    cursor += 64 * kPageSize; // monitor state headroom
    l.monEnd = cursor;

    l.monGhcbBase = cursor;
    cursor += Gpa(vcpus) * kPageSize;
    l.srvGhcbBase = cursor;
    cursor += Gpa(vcpus) * kPageSize;
    l.bootGhcb = l.monGhcbBase;

    l.srvBase = cursor;
    l.logStore = cursor;
    cursor += pageAlignUp(log_bytes);
    l.logStoreEnd = cursor;
    l.srvIdcbBase = cursor;
    cursor += Gpa(vcpus) * kPageSize;
    l.srvHeap = cursor;
    cursor += srv_heap_pages * kPageSize; // enclave PT frames + staging
    l.srvEnd = cursor;

    l.osGhcbBase = cursor;
    cursor += Gpa(vcpus) * kPageSize;
    l.osMonIdcbBase = cursor;
    cursor += Gpa(vcpus) * kPageSize;
    l.osSrvIdcbBase = cursor;
    cursor += Gpa(vcpus) * kPageSize;

    l.kernelBase = cursor;
    l.memEnd = mem_bytes;

    // Per-VCPU audit rings live at the very top of kernel memory so the
    // rest of the map — and with it every allocation address the frame
    // allocator hands out — is unchanged whether or not batched audit
    // logging is in use.
    l.logRingEnd = l.memEnd;
    l.logRingBase = l.logRingEnd - Gpa(vcpus) * kAuditRingPages * kPageSize;

    // VeilOp submission + completion rings sit just below the audit
    // rings; carving them from the top keeps every frame-allocator
    // address identical whether or not batching is enabled.
    l.opRingEnd = l.logRingBase;
    l.opRingBase =
        l.opRingEnd - Gpa(vcpus) * (kOpRingPages + kOpCplPages) * kPageSize;

    ensure(l.kernelBase + 128 * kPageSize < l.opRingBase,
           "layout: machine memory too small for this configuration");
    return l;
}

} // namespace veil::core
