/**
 * @file
 * VKO: the loadable kernel-module format of this reproduction's
 * mini-kernel. Mirrors what VeilS-KCI needs from a real .ko (§6.1):
 * signed contents, a text section, a data section, and relocations
 * resolved against a protected symbol table.
 *
 * Wire layout (little-endian):
 *   VkoHeader | text bytes | data bytes | VkoReloc[nRelocs] |
 *   VkoSymbol[nSymbols]
 * The signature covers everything except the signature field itself.
 */
#ifndef VEIL_VEIL_MODULE_FORMAT_HH_
#define VEIL_VEIL_MODULE_FORMAT_HH_

#include <optional>
#include <string>
#include <vector>

#include "crypto/sig.hh"
#include "snp/types.hh"

namespace veil::core {

constexpr uint32_t kVkoMagic = 0x314f4b56; // "VKO1"
constexpr size_t kVkoSymbolNameMax = 24;

/** Fixed-size module header. */
struct VkoHeader
{
    uint32_t magic = kVkoMagic;
    uint32_t textLen = 0;
    uint32_t dataLen = 0;
    uint32_t nRelocs = 0;
    uint32_t nSymbols = 0;
    uint32_t entryOffset = 0; ///< module entry point within text
    crypto::Signature signature{};
};

/** Patch the u64 at text[offset] with the address of symbol[symIndex]. */
struct VkoReloc
{
    uint32_t offset = 0;
    uint32_t symIndex = 0;
};

/** A symbol the module imports from the kernel. */
struct VkoSymbol
{
    char name[kVkoSymbolNameMax] = {};
};

/** Parsed, in-memory view of a module image. */
struct VkoModule
{
    VkoHeader header;
    Bytes text;
    Bytes data;
    std::vector<VkoReloc> relocs;
    std::vector<std::string> symbols;

    size_t installedSize() const { return text.size() + data.size(); }
};

/** Inputs for building a module image. */
struct VkoBuildSpec
{
    Bytes text;
    Bytes data;
    std::vector<std::pair<uint32_t, std::string>> relocs; ///< offset, symbol
    uint32_t entryOffset = 0;
};

/** Build and sign a module image. */
Bytes vkoBuild(const VkoBuildSpec &spec, const Bytes &signing_key);

/** Digest over the image with the signature field zeroed. */
crypto::Digest vkoDigest(const Bytes &image);

/** Parse + structurally validate; nullopt on malformed input.
 *  Does NOT check the signature — that is the caller's decision. */
std::optional<VkoModule> vkoParse(const Bytes &image);

/** Signature check against @p key. */
bool vkoVerify(const Bytes &image, const Bytes &key);

} // namespace veil::core

#endif // VEIL_VEIL_MODULE_FORMAT_HH_
