#include "veil/module_format.hh"

#include <cstring>

#include "base/log.hh"
#include "crypto/sha256.hh"

namespace veil::core {

namespace {
constexpr size_t kSigOffset = offsetof(VkoHeader, signature);
} // namespace

Bytes
vkoBuild(const VkoBuildSpec &spec, const Bytes &signing_key)
{
    ensure(spec.entryOffset < spec.text.size() || spec.text.empty(),
           "vkoBuild: entry offset outside text");

    // Collect unique symbol names preserving first-use order.
    std::vector<std::string> symbols;
    std::vector<VkoReloc> relocs;
    for (const auto &[offset, name] : spec.relocs) {
        ensure(offset + 8 <= spec.text.size(),
               "vkoBuild: relocation outside text");
        ensure(name.size() < kVkoSymbolNameMax, "vkoBuild: symbol too long");
        uint32_t idx = 0;
        for (; idx < symbols.size(); ++idx) {
            if (symbols[idx] == name)
                break;
        }
        if (idx == symbols.size())
            symbols.push_back(name);
        relocs.push_back(VkoReloc{offset, idx});
    }

    VkoHeader hdr;
    hdr.textLen = static_cast<uint32_t>(spec.text.size());
    hdr.dataLen = static_cast<uint32_t>(spec.data.size());
    hdr.nRelocs = static_cast<uint32_t>(relocs.size());
    hdr.nSymbols = static_cast<uint32_t>(symbols.size());
    hdr.entryOffset = spec.entryOffset;

    Bytes image;
    appendBytes(image, &hdr, sizeof(hdr));
    appendBytes(image, spec.text.data(), spec.text.size());
    appendBytes(image, spec.data.data(), spec.data.size());
    for (const auto &r : relocs)
        appendBytes(image, &r, sizeof(r));
    for (const auto &name : symbols) {
        VkoSymbol sym{};
        std::memcpy(sym.name, name.data(), name.size());
        appendBytes(image, &sym, sizeof(sym));
    }

    crypto::Signature sig =
        crypto::signDigest(signing_key, "veil-module", vkoDigest(image));
    std::memcpy(image.data() + kSigOffset, sig.data(), sig.size());
    return image;
}

crypto::Digest
vkoDigest(const Bytes &image)
{
    ensure(image.size() >= sizeof(VkoHeader), "vkoDigest: short image");
    Bytes copy = image;
    std::memset(copy.data() + kSigOffset, 0, sizeof(crypto::Signature));
    return crypto::Sha256::hash(copy);
}

std::optional<VkoModule>
vkoParse(const Bytes &image)
{
    if (image.size() < sizeof(VkoHeader))
        return std::nullopt;
    VkoModule mod;
    std::memcpy(&mod.header, image.data(), sizeof(VkoHeader));
    const VkoHeader &h = mod.header;
    if (h.magic != kVkoMagic)
        return std::nullopt;

    size_t need = sizeof(VkoHeader) + size_t(h.textLen) + h.dataLen +
                  size_t(h.nRelocs) * sizeof(VkoReloc) +
                  size_t(h.nSymbols) * sizeof(VkoSymbol);
    if (image.size() != need)
        return std::nullopt;
    if (h.textLen > 0 && h.entryOffset >= h.textLen)
        return std::nullopt;

    size_t off = sizeof(VkoHeader);
    mod.text.assign(image.begin() + off, image.begin() + off + h.textLen);
    off += h.textLen;
    mod.data.assign(image.begin() + off, image.begin() + off + h.dataLen);
    off += h.dataLen;
    mod.relocs.resize(h.nRelocs);
    if (h.nRelocs)
        std::memcpy(mod.relocs.data(), image.data() + off,
                    h.nRelocs * sizeof(VkoReloc));
    off += h.nRelocs * sizeof(VkoReloc);
    for (uint32_t i = 0; i < h.nSymbols; ++i) {
        VkoSymbol sym;
        std::memcpy(&sym, image.data() + off + i * sizeof(VkoSymbol),
                    sizeof(VkoSymbol));
        sym.name[kVkoSymbolNameMax - 1] = '\0';
        mod.symbols.emplace_back(sym.name);
    }

    // Structural checks on relocations.
    for (const auto &r : mod.relocs) {
        if (r.offset + 8 > h.textLen || r.symIndex >= h.nSymbols)
            return std::nullopt;
    }
    return mod;
}

bool
vkoVerify(const Bytes &image, const Bytes &key)
{
    if (image.size() < sizeof(VkoHeader))
        return false;
    crypto::Signature sig;
    std::memcpy(sig.data(), image.data() + kSigOffset, sig.size());
    return crypto::verifyDigest(key, "veil-module", vkoDigest(image), sig);
}

} // namespace veil::core
