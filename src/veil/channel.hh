/**
 * @file
 * Authenticated-encryption channel between VeilMon (and its protected
 * services) and the remote user (§5.1). Established after SEV remote
 * attestation binds VeilMon's DH public key; every message is
 * AES-128-CTR encrypted and HMAC-SHA256 authenticated with a strictly
 * increasing nonce (replay protection). All traffic transits the
 * untrusted kernel's network stack, which can drop or corrupt but not
 * forge or read messages.
 */
#ifndef VEIL_VEIL_CHANNEL_HH_
#define VEIL_VEIL_CHANNEL_HH_

#include <optional>

#include "crypto/aes.hh"
#include "crypto/dh.hh"
#include "crypto/hmac.hh"

namespace veil::core {

// Wire format: [nonce:8][len:4][ciphertext:len][mac:32]. Exposed so
// consumers sizing sealed replies against a fixed buffer (e.g. the LOG
// service's Fetch budget vs kIdcbRetPayloadMax) can derive the slack
// from the real framing instead of a magic constant.
constexpr size_t kSealHeaderBytes = 12;
constexpr size_t kSealMacBytes = 32;
constexpr size_t kSealOverheadBytes = kSealHeaderBytes + kSealMacBytes;
// The wire length field is 32 bits; cap payloads far below that so an
// oversized plaintext is rejected outright instead of being silently
// truncated into a message whose MAC covers fewer bytes than the
// caller handed over (the length would otherwise wrap modulo 2^32).
constexpr size_t kSealPlaintextMax = size_t(1) << 20;

/** One endpoint of the secure channel. */
class SecureChannel
{
  public:
    /**
     * @param keys      derived session keys (both sides derive the same)
     * @param initiator true for the remote user, false for VeilMon;
     *                  splits the nonce space between directions.
     */
    SecureChannel(const crypto::SessionKeys &keys, bool initiator);

    /** Encrypt + authenticate @p plaintext. */
    Bytes seal(const Bytes &plaintext);

    /**
     * Verify + decrypt a sealed message from the peer. Returns nullopt
     * on MAC failure, malformed framing, or nonce replay.
     */
    std::optional<Bytes> open(const Bytes &sealed);

  private:
    // Cached per-channel key contexts: the AES schedule and the HMAC
    // midstates are derived once at establishment, so steady-state
    // seal/open does no key processing.
    crypto::Aes128 cipher_;
    crypto::HmacKey macKey_;
    uint64_t txNonce_;
    uint64_t rxNonce_;
};

} // namespace veil::core

#endif // VEIL_VEIL_CHANNEL_HH_
