/**
 * @file
 * Inter-domain communication blocks (IDCBs) and the Veil request
 * protocol (§5.2). An IDCB is one page of shared state between two
 * domains, always allocated in the less-privileged side's memory, one
 * per VCPU to avoid contention. A requester fills the message, marks it
 * pending, and asks the hypervisor for a domain switch; the privileged
 * side processes it and switches back.
 */
#ifndef VEIL_VEIL_PROTO_HH_
#define VEIL_VEIL_PROTO_HH_

#include <cstdint>

#include "snp/types.hh"
#include "snp/vcpu.hh"
#include "veil/ring.hh"

namespace veil::core {

/** Operations across Veil's IDCBs. */
enum class VeilOp : uint32_t {
    None = 0,
    Ping,

    // ---- VeilMon (DomMON) ----
    BootVcpu,        ///< §5.3 VCPU boot delegation: args[0] = vcpu id
    Pvalidate,       ///< §5.3 page-state delegation: args[0]=gpa, args[1]=validate
    PageStateChange, ///< args[0]=gpa, args[1]=1 shared / 0 private
    EstablishChannel,///< payload = user DH public key; ret = report+mon pub
    CreateEnclaveVmsa, ///< SRV->MON: args[0]=vcpu, args[1]=host program id,
                       ///< args[2]=cr3, args[3]=ghcb gpa, args[4]=idt handler,
                       ///< args[5]=enclave id
    DestroyEnclaveVmsa,///< SRV->MON: args[0]=vcpu, args[1]=vmsa id

    // ---- VeilS-KCI ----
    KciActivate,     ///< args: text lo/hi, data lo/hi (gpa)
    KciModuleLoad,   ///< args[0]=image gpa, args[1]=len, args[2]=dest gpa,
                     ///< args[3]=dest pages; ret[0]=module handle
    KciModuleUnload, ///< args[0]=module handle

    // ---- VeilS-ENC ----
    EncCreate,       ///< args[0]=cr3, args[1]=va lo, args[2]=va hi,
                     ///< args[3]=ghcb gpa, args[4]=vcpu,
                     ///< args[5]=host program id, args[6]=ocall page gva,
                     ///< args[7]=entry handler va; ret[0]=enclave id
    EncDestroy,      ///< args[0]=enclave id
    EncFreePage,     ///< args[0]=enclave id, args[1]=gva
    EncRestorePage,  ///< args[0]=enclave id, args[1]=gva, args[2]=frame gpa
    EncMprotect,     ///< args[0]=id, args[1]=gva, args[2]=len, args[3]=prot
    EncSyncPerms,    ///< args[0]=id, args[1]=gva, args[2]=len, args[3]=prot
    EncGetMeasurement, ///< args[0]=enclave id; ret payload = MAC'd digest

    // ---- VeilS-LOG ----
    LogAppend,       ///< payload = audit record bytes
    LogQuery,        ///< payload = sealed request; ret payload = sealed reply
    LogStats,        ///< ret[0]=record count, ret[1]=bytes used
    LogAppendBatch,  ///< drain this VCPU's audit ring: args[0] = ring gpa
                     ///< (must match the layout); ret[0]=appended,
                     ///< ret[1]=dropped

    // ---- VeilOp rings (exit-less batched service calls, §11) ----
    OpRingDoorbell,  ///< drain this VCPU's VeilOp submission ring;
                     ///< ret[0]=requests drained, ret[1]=completions
                     ///< posted (< ret[0] when the completion ring
                     ///< filled; the rest stay queued)

    // ---- VeilFleet snapshot/clone (§13) ----
    EncSnapshot,     ///< args[0]=enclave id; seals the enclave image as
                     ///< a copy-on-write template; ret[0]=snapshot id,
                     ///< ret[1]=page count
    EncClone,        ///< args[0]=snapshot id, args[1]=new process cr3,
                     ///< args[2]=ghcb gpa, args[3]=vcpu;
                     ///< ret[0]=enclave id, ret[1]=vmsa id,
                     ///< ret[2]=va lo, ret[3]=va hi (from the template)
    EncCloneFault,   ///< CoW break: args[0]=enclave id, args[1]=gva,
                     ///< args[2]=fresh frame gpa
    EncSnapshotRelease, ///< args[0]=snapshot id; drop the kernel's ref

    // ---- Session provisioning (§15) ----
    ChannelTeardown, ///< payload = sealed teardown proof from the live
                     ///< session's owner; ends the session so a new
                     ///< EstablishChannel may succeed
};

/** Number of VeilOp values (for per-op counter arrays). */
constexpr size_t kVeilOpCount =
    static_cast<size_t>(VeilOp::ChannelTeardown) + 1;

/** Stable lower-case name for metrics ("enc-free-page", ...). */
const char *veilOpName(VeilOp op);

/** Status codes returned in IdcbMessage::status. */
enum class VeilStatus : uint64_t {
    Ok = 0,
    Denied,
    BadArgs,
    NotFound,
    VerifyFailed,
    Overflow,
    Unsupported,
};

constexpr size_t kIdcbPayloadMax = 2048;
constexpr size_t kIdcbRetPayloadMax = 1024;

/** POD message exchanged through an IDCB page. */
struct IdcbMessage
{
    uint32_t pending = 0; ///< 1 while a request awaits processing
    uint32_t op = 0;      ///< VeilOp
    uint32_t requesterVmpl = 0;
    uint32_t seq = 0;
    uint64_t args[8] = {};
    uint32_t payloadLen = 0;
    uint32_t pad0 = 0;
    uint8_t payload[kIdcbPayloadMax] = {};
    uint64_t status = 0;  ///< VeilStatus
    uint64_t ret[4] = {};
    uint32_t retPayloadLen = 0;
    uint32_t pad1 = 0;
    uint8_t retPayload[kIdcbRetPayloadMax] = {};
};

static_assert(sizeof(IdcbMessage) <= snp::kPageSize,
              "IDCB message must fit in one page");

// ---- Group-commit audit ring (VeilOp::LogAppendBatch, §6.3) ----
//
// One single-producer/single-consumer ring per VCPU, placed in
// kernel-owned (Dom-UNT) pages that Dom-SRV can read, per the §5.2
// rule that shared blocks live in the less-privileged side's memory.
// The kernel appends records locally and flushes the whole ring with
// one IDCB call, amortizing the two domain switches per record that
// execute-ahead mode pays. Geometry and conventions live in ring.hh,
// shared with the VeilOp rings.

using AuditRingHeader = RingHeader;

/** GPA of record slot @p idx (taken mod capacity) in a ring page run. */
inline snp::Gpa
auditRingSlot(snp::Gpa ring_base, uint64_t idx)
{
    return ringSlot(ring_base, kAuditSlotBytes, kAuditRingSlots, idx);
}

/**
 * Advisory GHCB hint (Ghcb::info[2]) carried by a domain switch. The
 * hypervisor may use it for scheduling (and VeilChaos targets it); it
 * is never trusted by the guest. Zero means "no hint" and leaves the
 * switch request byte-identical to the pre-hint protocol.
 */
constexpr uint64_t kSwitchHintDoorbell = snp::kGhcbSwitchHintDoorbell;

/**
 * Requester-side helper: writes the request in @p msg into the IDCB
 * page, asks the hypervisor for a domain switch to @p target_vmpl on
 * this VCPU, and reads the processed reply back into @p msg — the
 * message is updated in place, so the ~3.2 KB block is never copied
 * through the call. Handles interrupt-redirect resumes by re-issuing
 * the switch.
 */
void idcbCall(snp::Vcpu &cpu, snp::Gpa idcb, snp::Vmpl target_vmpl,
              IdcbMessage &msg, uint64_t hint = 0);

/** Responder-side: fetch a pending request, if any. */
bool idcbFetch(snp::Vcpu &cpu, snp::Gpa idcb, IdcbMessage &out);

/** Responder-side: write the reply and clear pending. */
void idcbReply(snp::Vcpu &cpu, snp::Gpa idcb, const IdcbMessage &reply);

/** Issue a hypervisor-relayed domain switch (no IDCB involved). */
void domainSwitch(snp::Vcpu &cpu, snp::Vmpl target_vmpl, uint64_t hint = 0);

} // namespace veil::core

#endif // VEIL_VEIL_PROTO_HH_
