/**
 * @file
 * Inter-domain communication blocks (IDCBs) and the Veil request
 * protocol (§5.2). An IDCB is one page of shared state between two
 * domains, always allocated in the less-privileged side's memory, one
 * per VCPU to avoid contention. A requester fills the message, marks it
 * pending, and asks the hypervisor for a domain switch; the privileged
 * side processes it and switches back.
 */
#ifndef VEIL_VEIL_PROTO_HH_
#define VEIL_VEIL_PROTO_HH_

#include <cstdint>

#include "snp/types.hh"
#include "snp/vcpu.hh"

namespace veil::core {

/** Operations across Veil's IDCBs. */
enum class VeilOp : uint32_t {
    None = 0,
    Ping,

    // ---- VeilMon (DomMON) ----
    BootVcpu,        ///< §5.3 VCPU boot delegation: args[0] = vcpu id
    Pvalidate,       ///< §5.3 page-state delegation: args[0]=gpa, args[1]=validate
    PageStateChange, ///< args[0]=gpa, args[1]=1 shared / 0 private
    EstablishChannel,///< payload = user DH public key; ret = report+mon pub
    CreateEnclaveVmsa, ///< SRV->MON: args[0]=vcpu, args[1]=host program id,
                       ///< args[2]=cr3, args[3]=ghcb gpa, args[4]=idt handler,
                       ///< args[5]=enclave id
    DestroyEnclaveVmsa,///< SRV->MON: args[0]=vcpu, args[1]=vmsa id

    // ---- VeilS-KCI ----
    KciActivate,     ///< args: text lo/hi, data lo/hi (gpa)
    KciModuleLoad,   ///< args[0]=image gpa, args[1]=len, args[2]=dest gpa,
                     ///< args[3]=dest pages; ret[0]=module handle
    KciModuleUnload, ///< args[0]=module handle

    // ---- VeilS-ENC ----
    EncCreate,       ///< args[0]=cr3, args[1]=va lo, args[2]=va hi,
                     ///< args[3]=ghcb gpa, args[4]=vcpu,
                     ///< args[5]=host program id, args[6]=ocall page gva,
                     ///< args[7]=entry handler va; ret[0]=enclave id
    EncDestroy,      ///< args[0]=enclave id
    EncFreePage,     ///< args[0]=enclave id, args[1]=gva
    EncRestorePage,  ///< args[0]=enclave id, args[1]=gva, args[2]=frame gpa
    EncMprotect,     ///< args[0]=id, args[1]=gva, args[2]=len, args[3]=prot
    EncSyncPerms,    ///< args[0]=id, args[1]=gva, args[2]=len, args[3]=prot
    EncGetMeasurement, ///< args[0]=enclave id; ret payload = MAC'd digest

    // ---- VeilS-LOG ----
    LogAppend,       ///< payload = audit record bytes
    LogQuery,        ///< payload = sealed request; ret payload = sealed reply
    LogStats,        ///< ret[0]=record count, ret[1]=bytes used
    LogAppendBatch,  ///< drain this VCPU's audit ring: args[0] = ring gpa
                     ///< (must match the layout); ret[0]=appended,
                     ///< ret[1]=dropped
};

/** Status codes returned in IdcbMessage::status. */
enum class VeilStatus : uint64_t {
    Ok = 0,
    Denied,
    BadArgs,
    NotFound,
    VerifyFailed,
    Overflow,
    Unsupported,
};

constexpr size_t kIdcbPayloadMax = 2048;
constexpr size_t kIdcbRetPayloadMax = 1024;

/** POD message exchanged through an IDCB page. */
struct IdcbMessage
{
    uint32_t pending = 0; ///< 1 while a request awaits processing
    uint32_t op = 0;      ///< VeilOp
    uint32_t requesterVmpl = 0;
    uint32_t seq = 0;
    uint64_t args[8] = {};
    uint32_t payloadLen = 0;
    uint32_t pad0 = 0;
    uint8_t payload[kIdcbPayloadMax] = {};
    uint64_t status = 0;  ///< VeilStatus
    uint64_t ret[4] = {};
    uint32_t retPayloadLen = 0;
    uint32_t pad1 = 0;
    uint8_t retPayload[kIdcbRetPayloadMax] = {};
};

static_assert(sizeof(IdcbMessage) <= snp::kPageSize,
              "IDCB message must fit in one page");

// ---- Group-commit audit ring (VeilOp::LogAppendBatch, §6.3) ----
//
// One single-producer/single-consumer ring per VCPU, placed in
// kernel-owned (Dom-UNT) pages that Dom-SRV can read, per the §5.2
// rule that shared blocks live in the less-privileged side's memory.
// The kernel appends records locally and flushes the whole ring with
// one IDCB call, amortizing the two domain switches per record that
// execute-ahead mode pays. Slot 0 holds the header; record slots are
// fixed-size so wrap-around never splits a record.

constexpr size_t kAuditRingPages = 4;    ///< ring size per VCPU
constexpr size_t kAuditSlotBytes = 256;  ///< per slot, incl. 4-byte length
constexpr size_t kAuditSlotDataMax = kAuditSlotBytes - 4;
constexpr uint64_t kAuditRingSlots =
    kAuditRingPages * snp::kPageSize / kAuditSlotBytes - 1;

/** Shared ring header (slot 0). head/tail are monotonic indices. */
struct AuditRingHeader
{
    uint64_t capacity = 0;      ///< slot count; must equal kAuditRingSlots
    uint64_t head = 0;          ///< producer: next index to fill
    uint64_t tail = 0;          ///< consumer: next index to drain
    uint64_t producerDrops = 0; ///< records dropped ring-full (never
                                ///< overwritten; §6.3 drop-don't-overwrite)
};

static_assert(sizeof(AuditRingHeader) <= kAuditSlotBytes,
              "audit ring header must fit in slot 0");

/** GPA of record slot @p idx (taken mod capacity) in a ring page run. */
inline snp::Gpa
auditRingSlot(snp::Gpa ring_base, uint64_t idx)
{
    return ring_base + kAuditSlotBytes * (1 + idx % kAuditRingSlots);
}

/**
 * Requester-side helper: writes the request in @p msg into the IDCB
 * page, asks the hypervisor for a domain switch to @p target_vmpl on
 * this VCPU, and reads the processed reply back into @p msg — the
 * message is updated in place, so the ~3.2 KB block is never copied
 * through the call. Handles interrupt-redirect resumes by re-issuing
 * the switch.
 */
void idcbCall(snp::Vcpu &cpu, snp::Gpa idcb, snp::Vmpl target_vmpl,
              IdcbMessage &msg);

/** Responder-side: fetch a pending request, if any. */
bool idcbFetch(snp::Vcpu &cpu, snp::Gpa idcb, IdcbMessage &out);

/** Responder-side: write the reply and clear pending. */
void idcbReply(snp::Vcpu &cpu, snp::Gpa idcb, const IdcbMessage &reply);

/** Issue a hypervisor-relayed domain switch (no IDCB involved). */
void domainSwitch(snp::Vcpu &cpu, snp::Vmpl target_vmpl);

} // namespace veil::core

#endif // VEIL_VEIL_PROTO_HH_
