#include "veil/proto.hh"

#include <algorithm>

#include "base/log.hh"
#include "hv/hypervisor.hh"
#include "snp/fault.hh"

namespace veil::core {

using namespace snp;

namespace {

constexpr size_t kHeadLen = offsetof(IdcbMessage, payload);
constexpr size_t kTailOff = offsetof(IdcbMessage, status);
constexpr size_t kTailLen = offsetof(IdcbMessage, retPayload) - kTailOff;

/** Copy only the used parts of a message into guest memory. */
void
writeMessage(Vcpu &cpu, Gpa idcb, const IdcbMessage &msg)
{
    const auto *raw = reinterpret_cast<const uint8_t *>(&msg);
    size_t pay = std::min<size_t>(msg.payloadLen, kIdcbPayloadMax);
    size_t ret = std::min<size_t>(msg.retPayloadLen, kIdcbRetPayloadMax);
    cpu.writePhys(idcb, raw, kHeadLen + pay);
    cpu.writePhys(idcb + kTailOff, raw + kTailOff, kTailLen + ret);
}

/** Read only the used parts of a message from guest memory. */
void
readMessage(Vcpu &cpu, Gpa idcb, IdcbMessage &msg)
{
    auto *raw = reinterpret_cast<uint8_t *>(&msg);
    cpu.readPhys(idcb, raw, kHeadLen);
    size_t pay = std::min<size_t>(msg.payloadLen, kIdcbPayloadMax);
    if (pay > 0)
        cpu.readPhys(idcb + kHeadLen, raw + kHeadLen, pay);
    cpu.readPhys(idcb + kTailOff, raw + kTailOff, kTailLen);
    size_t ret = std::min<size_t>(msg.retPayloadLen, kIdcbRetPayloadMax);
    if (ret > 0) {
        cpu.readPhys(idcb + offsetof(IdcbMessage, retPayload),
                     raw + offsetof(IdcbMessage, retPayload), ret);
    }
}

} // namespace

const char *
veilOpName(VeilOp op)
{
    switch (op) {
      case VeilOp::None:
        return "none";
      case VeilOp::Ping:
        return "ping";
      case VeilOp::BootVcpu:
        return "boot-vcpu";
      case VeilOp::Pvalidate:
        return "pvalidate";
      case VeilOp::PageStateChange:
        return "page-state-change";
      case VeilOp::EstablishChannel:
        return "establish-channel";
      case VeilOp::CreateEnclaveVmsa:
        return "create-enclave-vmsa";
      case VeilOp::DestroyEnclaveVmsa:
        return "destroy-enclave-vmsa";
      case VeilOp::KciActivate:
        return "kci-activate";
      case VeilOp::KciModuleLoad:
        return "kci-module-load";
      case VeilOp::KciModuleUnload:
        return "kci-module-unload";
      case VeilOp::EncCreate:
        return "enc-create";
      case VeilOp::EncDestroy:
        return "enc-destroy";
      case VeilOp::EncFreePage:
        return "enc-free-page";
      case VeilOp::EncRestorePage:
        return "enc-restore-page";
      case VeilOp::EncMprotect:
        return "enc-mprotect";
      case VeilOp::EncSyncPerms:
        return "enc-sync-perms";
      case VeilOp::EncGetMeasurement:
        return "enc-get-measurement";
      case VeilOp::LogAppend:
        return "log-append";
      case VeilOp::LogQuery:
        return "log-query";
      case VeilOp::LogStats:
        return "log-stats";
      case VeilOp::LogAppendBatch:
        return "log-append-batch";
      case VeilOp::OpRingDoorbell:
        return "op-ring-doorbell";
      case VeilOp::EncSnapshot:
        return "enc-snapshot";
      case VeilOp::EncClone:
        return "enc-clone";
      case VeilOp::EncCloneFault:
        return "enc-clone-fault";
      case VeilOp::EncSnapshotRelease:
        return "enc-snapshot-release";
      case VeilOp::ChannelTeardown:
        return "channel-teardown";
    }
    return "unknown";
}

void
domainSwitch(Vcpu &cpu, Vmpl target_vmpl, uint64_t hint)
{
    // Bounded recovery from hypervisor misbehaviour (DESIGN.md §10).
    // The fault budget must exceed any chaos plan's consecutive-fault
    // budget (see chaos::FaultPlan): a transiently-hostile hypervisor is
    // absorbed, a persistently-hostile one becomes an *attributed* halt
    // instead of a livelock or a silently-wrong result.
    constexpr int kFaultBudget = 96;
    int faults = 0;
    uint64_t backoff = 500;
    for (;;) {
        Ghcb g;
        g.exitCode = static_cast<uint64_t>(GhcbExit::DomainSwitch);
        g.info[0] = cpu.vcpuId();
        g.info[1] = static_cast<uint64_t>(target_vmpl);
        g.info[2] = hint;
        // Drop-detection sentinel: a hypervisor that handles the request
        // always overwrites result, so reading it back proves the relay
        // was swallowed.
        g.result = kGhcbNoResult;
        cpu.writeGhcb(g);
        cpu.vmgexit();
        uint64_t result = cpu.readGhcb().result;
        if (result == static_cast<uint64_t>(hv::HvResult::IntrRedirect)) {
            // We were resumed to absorb a redirected interrupt; the
            // vector was already delivered on resume. Re-issue. Not a
            // fault: each redirect needs a fresh timer event, so this
            // cannot starve the switch.
            continue;
        }
        if (result == kGhcbNoResult) {
            if (++faults > kFaultBudget)
                break;
            ++cpu.machine().stats().switchRetries;
            continue;
        }
        if (result == static_cast<uint64_t>(hv::HvResult::Denied)) {
            // Denial is within the host's authority and may be
            // transient; back off and re-ask. Re-asking is safe — a
            // switch carries no side effect besides scheduling.
            if (++faults > kFaultBudget)
                break;
            ++cpu.machine().stats().switchDeniedRetries;
            cpu.burn(backoff);
            backoff = std::min<uint64_t>(backoff * 2, 64'000);
            continue;
        }
        return; // any other value: the switch was granted
    }
    throw CvmHaltFault(
        strfmt("domainSwitch to VMPL-%d starved beyond the retry budget "
               "(hypervisor dropped or denied %d requests)",
               vmplIndex(target_vmpl), kFaultBudget));
}

void
idcbCall(Vcpu &cpu, Gpa idcb, Vmpl target_vmpl, IdcbMessage &msg,
         uint64_t hint)
{
    msg.pending = 1;
    msg.requesterVmpl = static_cast<uint32_t>(vmplIndex(cpu.vmpl()));
    writeMessage(cpu, idcb, msg);

    constexpr int kResendBudget = 24;
    for (int attempt = 0;; ++attempt) {
        domainSwitch(cpu, target_vmpl, hint);
        readMessage(cpu, idcb, msg);
        if (!msg.pending)
            return;
        // Granted switch, unserviced request: the hypervisor ran the
        // wrong replica or resumed us spuriously. The pending flag is
        // the fence that makes re-asking safe — the target executes a
        // request exactly once and clears the flag in the same reply,
        // so a re-issued *switch* can never re-execute a processed
        // request.
        if (attempt >= kResendBudget) {
            throw CvmHaltFault(
                strfmt("idcbCall (op %u): request starved beyond the "
                       "re-switch budget", msg.op));
        }
        ++cpu.machine().stats().idcbResends;
    }
}

bool
idcbFetch(Vcpu &cpu, Gpa idcb, IdcbMessage &out)
{
    // Peek the pending flag first; only pull the body for real work.
    uint32_t pending = 0;
    cpu.readPhys(idcb, &pending, sizeof(pending));
    if (!pending)
        return false;
    readMessage(cpu, idcb, out);
    return true;
}

void
idcbReply(Vcpu &cpu, Gpa idcb, const IdcbMessage &reply)
{
    IdcbMessage msg = reply;
    msg.pending = 0;
    writeMessage(cpu, idcb, msg);
}

} // namespace veil::core
