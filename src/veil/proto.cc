#include "veil/proto.hh"

#include "base/log.hh"
#include "hv/hypervisor.hh"

namespace veil::core {

using namespace snp;

namespace {

constexpr size_t kHeadLen = offsetof(IdcbMessage, payload);
constexpr size_t kTailOff = offsetof(IdcbMessage, status);
constexpr size_t kTailLen = offsetof(IdcbMessage, retPayload) - kTailOff;

/** Copy only the used parts of a message into guest memory. */
void
writeMessage(Vcpu &cpu, Gpa idcb, const IdcbMessage &msg)
{
    const auto *raw = reinterpret_cast<const uint8_t *>(&msg);
    size_t pay = std::min<size_t>(msg.payloadLen, kIdcbPayloadMax);
    size_t ret = std::min<size_t>(msg.retPayloadLen, kIdcbRetPayloadMax);
    cpu.writePhys(idcb, raw, kHeadLen + pay);
    cpu.writePhys(idcb + kTailOff, raw + kTailOff, kTailLen + ret);
}

/** Read only the used parts of a message from guest memory. */
void
readMessage(Vcpu &cpu, Gpa idcb, IdcbMessage &msg)
{
    auto *raw = reinterpret_cast<uint8_t *>(&msg);
    cpu.readPhys(idcb, raw, kHeadLen);
    size_t pay = std::min<size_t>(msg.payloadLen, kIdcbPayloadMax);
    if (pay > 0)
        cpu.readPhys(idcb + kHeadLen, raw + kHeadLen, pay);
    cpu.readPhys(idcb + kTailOff, raw + kTailOff, kTailLen);
    size_t ret = std::min<size_t>(msg.retPayloadLen, kIdcbRetPayloadMax);
    if (ret > 0) {
        cpu.readPhys(idcb + offsetof(IdcbMessage, retPayload),
                     raw + offsetof(IdcbMessage, retPayload), ret);
    }
}

} // namespace

void
domainSwitch(Vcpu &cpu, Vmpl target_vmpl)
{
    for (;;) {
        Ghcb g;
        g.exitCode = static_cast<uint64_t>(GhcbExit::DomainSwitch);
        g.info[0] = cpu.vcpuId();
        g.info[1] = static_cast<uint64_t>(target_vmpl);
        cpu.writeGhcb(g);
        cpu.vmgexit();
        uint64_t result = cpu.readGhcb().result;
        if (result == static_cast<uint64_t>(hv::HvResult::IntrRedirect)) {
            // We were resumed to absorb a redirected interrupt; the
            // vector was already delivered on resume. Re-issue.
            continue;
        }
        if (result == static_cast<uint64_t>(hv::HvResult::Denied))
            fatal("domainSwitch: hypervisor denied the switch");
        return;
    }
}

void
idcbCall(Vcpu &cpu, Gpa idcb, Vmpl target_vmpl, IdcbMessage &msg)
{
    msg.pending = 1;
    msg.requesterVmpl = static_cast<uint32_t>(vmplIndex(cpu.vmpl()));
    writeMessage(cpu, idcb, msg);

    domainSwitch(cpu, target_vmpl);

    readMessage(cpu, idcb, msg);
    if (msg.pending)
        fatal("idcbCall: request was not processed");
}

bool
idcbFetch(Vcpu &cpu, Gpa idcb, IdcbMessage &out)
{
    // Peek the pending flag first; only pull the body for real work.
    uint32_t pending = 0;
    cpu.readPhys(idcb, &pending, sizeof(pending));
    if (!pending)
        return false;
    readMessage(cpu, idcb, out);
    return true;
}

void
idcbReply(Vcpu &cpu, Gpa idcb, const IdcbMessage &reply)
{
    IdcbMessage msg = reply;
    msg.pending = 0;
    writeMessage(cpu, idcb, msg);
}

} // namespace veil::core
