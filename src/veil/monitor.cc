#include "veil/monitor.hh"

#include <cstring>
#include <set>

#include "base/log.hh"
#include "crypto/drbg.hh"
#include "snp/fault.hh"

namespace veil::core {

using namespace snp;

namespace {
/// Cycle cost of the monitor's DH key generation + shared-secret
/// computation during channel establishment (one-time, boot-path).
constexpr uint64_t kDhComputeCycles = 3'000'000;

/// Maximum entries in one grouped PageStateChange request (the GHCB
/// spec's PSC buffer holds 253 entries).
constexpr uint64_t kPscMaxEntries = 253;
} // namespace

VeilMon::VeilMon(Machine &machine, const CvmLayout &layout)
    : machine_(machine), layout_(layout), nextVmsaPage_(layout.vmsaPool)
{
}

void
VeilMon::setKernelEntries(GuestEntry bsp,
                          std::function<GuestEntry(uint32_t)> ap)
{
    kernelBsp_ = std::move(bsp);
    kernelAp_ = std::move(ap);
}

void
VeilMon::setServiceEntry(std::function<GuestEntry(uint32_t)> entry)
{
    serviceEntry_ = std::move(entry);
}

void
VeilMon::setEnclaveEntryFactory(EnclaveEntryFactory factory)
{
    enclaveEntryFactory_ = std::move(factory);
}

Gpa
VeilMon::allocVmsaPage()
{
    if (!freeVmsaPages_.empty()) {
        Gpa p = freeVmsaPages_.back();
        freeVmsaPages_.pop_back();
        return p;
    }
    // The boot VMSA occupies the first pool page (placed by launch).
    if (nextVmsaPage_ == layout_.vmsaPool)
        nextVmsaPage_ += kPageSize;
    if (nextVmsaPage_ >= layout_.vmsaPoolEnd)
        panic("VeilMon: VMSA pool exhausted");
    Gpa p = nextVmsaPage_;
    nextVmsaPage_ += kPageSize;
    return p;
}

bool
VeilMon::osPageAllowed(Gpa page) const
{
    if (!isPageAligned(page))
        return false;
    if (page >= layout_.memEnd)
        return false;
    // The OS may only operate on its own region; everything below
    // kernelBase (image, monitor, services, GHCBs, IDCBs) is off-limits
    // (§8.1 "OS request sanitized").
    if (page < layout_.kernelBase)
        return false;
    if (machine_.rmp().isVmsaPage(page))
        return false;
    return true;
}

void
VeilMon::bootMain(Vcpu &cpu)
{
    ensure(kernelBsp_ && serviceEntry_, "VeilMon: entries not wired");

    // Measured boot (§15): record the platform launch measurement and
    // the CVM geometry before any domain is carved. Host-side state —
    // zero simulated cycles, so the calibrated boot costs are exact.
    mboot_.extend(MeasuredBoot::kPcrPlatform, "launch-digest",
                  machine_.psp().launchDigest());
    Bytes geometry;
    appendLe<uint64_t>(geometry, layout_.kernelBase);
    appendLe<uint64_t>(geometry, layout_.memEnd);
    appendLe<uint64_t>(geometry, layout_.srvBase);
    appendLe<uint64_t>(geometry, layout_.monBase);
    appendLe<uint32_t>(geometry, layout_.numVcpus);
    mboot_.extendBytes(MeasuredBoot::kPcrConfig, "cvm-layout",
                       geometry.data(), geometry.size());

    uint64_t t0 = cpu.rdtsc();
    protectDomains(cpu);
    uint64_t t1 = cpu.rdtsc();

    Bytes carved;
    appendLe<uint64_t>(carved, bootStats_.pagesProtected);
    appendLe<uint64_t>(carved, bootStats_.hugeRegions);
    appendLe<uint64_t>(carved, lazyAccept_ ? 1 : 0);
    mboot_.extendBytes(MeasuredBoot::kPcrDomains, "domains-protected",
                       carved.data(), carved.size());

    createVcpuDomains(cpu, 0, true);
    uint64_t t2 = cpu.rdtsc();
    bootStats_.vmsaSetupCycles = t2 - t1;
    bootStats_.totalCycles = t2 - t0;

    mboot_.extendBytes(MeasuredBoot::kPcrServices, "services-wired",
                       "dispatcher", 10);
    monitorLoop(cpu);
}

int
VeilMon::grantClass(Gpa page) const
{
    // 0 = Dom-MON only, 1 = service region, 2 = OS-visible.
    if (page == 0 || layout_.inMonRegion(page))
        return 0;
    if (layout_.inSrvRegion(page))
        return 1;
    return 2;
}

bool
VeilMon::regionEligible2m(Gpa base) const
{
    // A 2 MiB region takes the PVALIDATE-2M fast path only when every
    // covered page is uniform: same grant class, no shared/VMSA pages,
    // nothing validated yet, and uniformly assigned (lazy acceptance
    // already ran by the time this is asked).
    if (!isPageAligned2m(base) || base + kPageSize2m > layout_.memEnd)
        return false;
    const RmpTable &rmp = machine_.rmp();
    int cls = grantClass(base);
    for (Gpa p = base; p < base + kPageSize2m; p += kPageSize) {
        if (rmp.isShared(p) || rmp.isVmsaPage(p) || rmp.isValidated(p))
            return false;
        if (!rmp.isAssigned(p))
            return false;
        if (grantClass(p) != cls)
            return false;
    }
    return true;
}

void
VeilMon::acceptLazyMemory(Vcpu &cpu)
{
    // Lazy launch left [kernelBase, memEnd) unassigned. With huge pages
    // on, accept it with grouped multi-entry PageStateChange requests
    // (one domain switch covers up to kPscMaxEntries 2 MiB regions);
    // with huge pages off the per-page acceptance round trips happen in
    // the protectDomains walk — the ablation baseline.
    if (!machine_.hugePagesEnabled())
        return;
    RmpTable &rmp = machine_.rmp();
    Gpa p = layout_.kernelBase;
    auto region_unassigned = [&](Gpa base) {
        if (!isPageAligned2m(base) || base + kPageSize2m > layout_.memEnd)
            return false;
        for (Gpa q = base; q < base + kPageSize2m; q += kPageSize)
            if (rmp.isAssigned(q) || rmp.isShared(q))
                return false;
        return true;
    };
    while (p < layout_.memEnd) {
        if (region_unassigned(p)) {
            uint64_t count = 0;
            Gpa q = p;
            while (count < kPscMaxEntries && region_unassigned(q)) {
                ++count;
                q += kPageSize2m;
            }
            Ghcb g;
            g.exitCode = static_cast<uint64_t>(GhcbExit::PageStateChange);
            g.info[0] = p;
            g.info[1] = 0; // to private (acceptance)
            g.info[2] = count;
            g.info[3] = 1; // 2 MiB entries
            cpu.hypercall(g);
            ++bootStats_.pscBatches;
            p = q;
        } else if (!rmp.isAssigned(p) && !rmp.isShared(p)) {
            // Unaligned head/tail: grouped 4 KiB entries up to the next
            // huge-eligible boundary.
            uint64_t count = 0;
            Gpa q = p;
            while (count < kPscMaxEntries && q < layout_.memEnd &&
                   !rmp.isAssigned(q) && !rmp.isShared(q) &&
                   !region_unassigned(q)) {
                ++count;
                q += kPageSize;
            }
            Ghcb g;
            g.exitCode = static_cast<uint64_t>(GhcbExit::PageStateChange);
            g.info[0] = p;
            g.info[1] = 0;
            g.info[2] = count;
            g.info[3] = 0;
            cpu.hypercall(g);
            ++bootStats_.pscBatches;
            p = q;
        } else {
            p += kPageSize;
        }
    }
}

void
VeilMon::protectDomains(Vcpu &cpu)
{
    RmpTable &rmp = machine_.rmp();
    uint64_t pv_cycles = 0;
    uint64_t ra_cycles = 0;
    const bool huge = machine_.hugePagesEnabled();

    if (lazyAccept_)
        acceptLazyMemory(cpu);

    Gpa p = 0;
    while (p < layout_.memEnd) {
        if (huge && regionEligible2m(p)) {
            // PVALIDATE-2M + RMPADJUST-2M: one instruction pair covers
            // the whole region (DESIGN.md §14).
            uint64_t t = cpu.rdtsc();
            cpu.pvalidate2m(p, true);
            pv_cycles += cpu.rdtsc() - t;
            t = cpu.rdtsc();
            switch (grantClass(p)) {
              case 0:
                break; // Dom-MON only: no grants below VMPL-0
              case 1:
                cpu.rmpadjust2m(p, Vmpl::Vmpl1, kPermRw);
                break;
              default:
                cpu.rmpadjust2m(p, Vmpl::Vmpl1, kPermRw);
                cpu.rmpadjust2m(p, Vmpl::Vmpl3, kPermAll, /*warm=*/true);
                break;
            }
            ra_cycles += cpu.rdtsc() - t;
            bootStats_.pagesProtected += kPagesPer2m;
            ++bootStats_.hugeRegions;
            p += kPageSize2m;
            continue;
        }

        if (rmp.isShared(p)) {
            p += kPageSize; // pre-shared GHCB pages stay hv-visible
            continue;
        }
        if (rmp.isVmsaPage(p)) {
            p += kPageSize; // boot VMSA
            continue;
        }
        if (lazyAccept_ && !rmp.isAssigned(p)) {
            // 4 KiB lazy acceptance: one PageStateChange round trip per
            // page (what the huge path's grouped requests amortize).
            Ghcb g;
            g.exitCode = static_cast<uint64_t>(GhcbExit::PageStateChange);
            g.info[0] = p;
            g.info[1] = 0;
            cpu.hypercall(g);
        }
        if (!rmp.isValidated(p)) {
            uint64_t t = cpu.rdtsc();
            cpu.pvalidate(p, true);
            pv_cycles += cpu.rdtsc() - t;
        }

        uint64_t t = cpu.rdtsc();
        if (p == 0 || layout_.inMonRegion(p)) {
            // Dom-MON only: no grants below VMPL-0.
        } else if (layout_.inSrvRegion(p)) {
            cpu.rmpadjust(p, Vmpl::Vmpl1, kPermRw);
        } else {
            // OS-visible memory: services may inspect it, the OS gets
            // full access (VeilS-KCI tightens W^X later, §6.1).
            cpu.rmpadjust(p, Vmpl::Vmpl1, kPermRw);
            cpu.rmpadjust(p, Vmpl::Vmpl3, kPermAll, /*warm=*/true);
        }
        ra_cycles += cpu.rdtsc() - t;
        ++bootStats_.pagesProtected;
        p += kPageSize;
    }

    bootStats_.pvalidateCycles = pv_cycles;
    bootStats_.rmpadjustCycles = ra_cycles;
}

void
VeilMon::hvRegisterVmsa(Vcpu &cpu, uint32_t vcpu, Vmpl vmpl, VmsaId id,
                        Gpa vmsa_gpa)
{
    Ghcb g;
    g.exitCode = static_cast<uint64_t>(GhcbExit::RegisterVmsa);
    g.info[0] = vmsa_gpa;
    g.info[1] = vcpu;
    g.info[2] = static_cast<uint64_t>(vmpl);
    g.info[3] = id;
    cpu.hypercall(g);
}

void
VeilMon::createVcpuDomains(Vcpu &cpu, uint32_t vcpu, bool boot_vcpu)
{
    Bytes who;
    appendLe<uint32_t>(who, vcpu);
    appendLe<uint32_t>(who, boot_vcpu ? 1 : 0);
    mboot_.extendBytes(MeasuredBoot::kPcrVcpus, "vcpu-domains", who.data(),
                       who.size());

    // Dom-SRV replica.
    Gpa srv_page = allocVmsaPage();
    VmsaId srv = cpu.createVmsa(srv_page, vcpu, Vmpl::Vmpl1,
                                /*irq_masked=*/true, serviceEntry_(vcpu));
    machine_.vmsaState(srv).ghcbGpa = layout_.srvGhcb(vcpu);
    hvRegisterVmsa(cpu, vcpu, Vmpl::Vmpl1, srv, srv_page);

    // Dom-UNT replica (the kernel).
    Gpa unt_page = allocVmsaPage();
    GuestEntry entry = boot_vcpu ? kernelBsp_ : kernelAp_(vcpu);
    VmsaId unt = cpu.createVmsa(unt_page, vcpu, Vmpl::Vmpl3,
                                /*irq_masked=*/false, std::move(entry));
    machine_.vmsaState(unt).ghcbGpa = layout_.osGhcb(vcpu);
    hvRegisterVmsa(cpu, vcpu, Vmpl::Vmpl3, unt, unt_page);

    if (!boot_vcpu) {
        // Dom-MON replica so the new VCPU can reach the monitor.
        Gpa mon_page = allocVmsaPage();
        VmsaId mon = cpu.createVmsa(mon_page, vcpu, Vmpl::Vmpl0,
                                    /*irq_masked=*/true,
                                    [this](Vcpu &inner) {
                                        monitorLoop(inner);
                                    });
        machine_.vmsaState(mon).ghcbGpa = layout_.monGhcb(vcpu);
        hvRegisterVmsa(cpu, vcpu, Vmpl::Vmpl0, mon, mon_page);
    }
}

void
VeilMon::monitorLoop(Vcpu &cpu)
{
    uint32_t vcpu = cpu.vcpuId();
    for (;;) {
        Vmpl reply_to = Vmpl::Vmpl3;
        IdcbMessage m;
        if (idcbFetch(cpu, layout_.osMonIdcb(vcpu), m)) {
            m.requesterVmpl = 3; // source IDCB, not attacker-controlled
            dispatch(cpu, m);
            idcbReply(cpu, layout_.osMonIdcb(vcpu), m);
            reply_to = Vmpl::Vmpl3;
        } else if (idcbFetch(cpu, layout_.srvMonIdcb(vcpu), m)) {
            m.requesterVmpl = 1;
            dispatch(cpu, m);
            idcbReply(cpu, layout_.srvMonIdcb(vcpu), m);
            reply_to = Vmpl::Vmpl1;
        }
        domainSwitch(cpu, reply_to);
    }
}

void
VeilMon::dispatch(Vcpu &cpu, IdcbMessage &msg)
{
    trace::SpanScope span(machine_.tracer(), trace::Category::MonitorReq,
                          msg.op);
    msg.status = static_cast<uint64_t>(VeilStatus::Denied);
    switch (static_cast<VeilOp>(msg.op)) {
      case VeilOp::Ping:
        msg.status = static_cast<uint64_t>(VeilStatus::Ok);
        break;
      case VeilOp::Pvalidate:
        opPvalidate(cpu, msg);
        break;
      case VeilOp::PageStateChange:
        opPageStateChange(cpu, msg);
        break;
      case VeilOp::BootVcpu:
        opBootVcpu(cpu, msg);
        break;
      case VeilOp::EstablishChannel:
        opEstablishChannel(cpu, msg);
        break;
      case VeilOp::ChannelTeardown:
        opChannelTeardown(cpu, msg);
        break;
      case VeilOp::CreateEnclaveVmsa:
        opCreateEnclaveVmsa(cpu, msg);
        break;
      case VeilOp::DestroyEnclaveVmsa:
        opDestroyEnclaveVmsa(cpu, msg);
        break;
      default:
        msg.status = static_cast<uint64_t>(VeilStatus::Unsupported);
        break;
    }
}

void
VeilMon::opPvalidate(Vcpu &cpu, IdcbMessage &msg)
{
    Gpa page = msg.args[0];
    bool validate = msg.args[1] != 0;
    if (!osPageAllowed(page)) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    cpu.pvalidate(page, validate);
    if (validate) {
        cpu.rmpadjust(page, Vmpl::Vmpl1, kPermRw, /*warm=*/true);
        cpu.rmpadjust(page, Vmpl::Vmpl3, kPermAll, /*warm=*/true);
    }
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
VeilMon::opPageStateChange(Vcpu &cpu, IdcbMessage &msg)
{
    Gpa page = msg.args[0];
    bool to_shared = msg.args[1] != 0;
    uint64_t count = msg.args[2] > 1 ? msg.args[2] : 1;
    bool size2m = msg.args[3] != 0;

    // Sanitize the whole size-tagged request (§8.1): the entry count is
    // capped at the GHCB PSC buffer size, 2 MiB operands must be
    // region-aligned, and EVERY covered 4 KiB page must individually
    // pass osPageAllowed — a malicious OS must not smuggle a protected
    // page inside a large entry.
    Gpa step = size2m ? kPageSize2m : kPageSize;
    if (count > kPscMaxEntries || (size2m && !isPageAligned2m(page)) ||
        !isPageAligned(page) || page + count * step < page) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    for (Gpa p = page; p < page + count * step; p += kPageSize) {
        if (!osPageAllowed(p)) {
            msg.status = static_cast<uint64_t>(VeilStatus::Denied);
            return;
        }
    }

    Ghcb g;
    g.exitCode = static_cast<uint64_t>(GhcbExit::PageStateChange);
    g.info[0] = page;
    g.info[1] = to_shared ? 1 : 0;

    if (count <= 1 && !size2m) {
        // Legacy single-page form: exact historical sequence.
        if (to_shared) {
            if (machine_.rmp().isValidated(page))
                cpu.pvalidate(page, false);
            cpu.hypercall(g);
        } else {
            cpu.hypercall(g);
            cpu.pvalidate(page, true);
            cpu.rmpadjust(page, Vmpl::Vmpl1, kPermRw, /*warm=*/true);
            cpu.rmpadjust(page, Vmpl::Vmpl3, kPermAll, /*warm=*/true);
        }
        msg.status = static_cast<uint64_t>(VeilStatus::Ok);
        return;
    }

    g.info[2] = count;
    g.info[3] = size2m ? 1 : 0;
    RmpTable &rmp = machine_.rmp();
    if (to_shared) {
        for (uint64_t i = 0; i < count; ++i) {
            Gpa base = page + i * step;
            if (size2m && rmp.isHuge(base) && rmp.isValidated(base)) {
                cpu.pvalidate2m(base, false);
                continue;
            }
            for (Gpa p = base; p < base + step; p += kPageSize)
                if (rmp.isValidated(p))
                    cpu.pvalidate(p, false);
        }
        cpu.hypercall(g);
    } else {
        cpu.hypercall(g);
        for (uint64_t i = 0; i < count; ++i) {
            Gpa base = page + i * step;
            if (size2m) {
                cpu.pvalidate2m(base, true);
                cpu.rmpadjust2m(base, Vmpl::Vmpl1, kPermRw, /*warm=*/true);
                cpu.rmpadjust2m(base, Vmpl::Vmpl3, kPermAll, /*warm=*/true);
            } else {
                cpu.pvalidate(base, true);
                cpu.rmpadjust(base, Vmpl::Vmpl1, kPermRw, /*warm=*/true);
                cpu.rmpadjust(base, Vmpl::Vmpl3, kPermAll, /*warm=*/true);
            }
        }
    }
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
VeilMon::opBootVcpu(Vcpu &cpu, IdcbMessage &msg)
{
    static_assert(sizeof(uint32_t) <= sizeof(msg.args[0]));
    uint32_t vcpu = static_cast<uint32_t>(msg.args[0]);
    if (vcpu == 0 || vcpu >= layout_.numVcpus ||
        bootedVcpus_.count(vcpu)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    createVcpuDomains(cpu, vcpu, /*boot_vcpu=*/false);
    bootedVcpus_.insert(vcpu);

    Ghcb g;
    g.exitCode = static_cast<uint64_t>(GhcbExit::StartVcpu);
    g.info[0] = vcpu;
    g.info[1] = static_cast<uint64_t>(Vmpl::Vmpl3);
    cpu.hypercall(g);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
VeilMon::opEstablishChannel(Vcpu &cpu, IdcbMessage &msg)
{
    if (msg.payloadLen != 32) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    // Session gating (§15): while a user session holds the channel, a
    // re-issued EstablishChannel — e.g. from a malicious OS trying to
    // desync the live session's keys — is refused outright. The owner
    // ends a session with a sealed ChannelTeardown proof; only then is
    // the next establishment accepted, under a fresh generation.
    if (sessionActive_) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    Bytes user_pub(msg.payload, msg.payload + 32);

    // Deterministic DRBG seeded from platform-secret material.
    Bytes seed = machine_.config().pspKey;
    appendBytes(seed, "veilmon-dh", 10);
    appendLe<uint64_t>(seed, channelNonce_++);
    crypto::HmacDrbg drbg(seed);
    crypto::DhKeyPair kp = crypto::dhGenerate(drbg);
    cpu.burn(kDhComputeCycles);

    Bytes shared;
    try {
        shared = crypto::dhSharedSecret(kp.secret, user_pub);
    } catch (const FatalError &) {
        // Degenerate or out-of-range peer public (e.g. 1 or p-1
        // substituted by the relay to force a predictable secret).
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    uint64_t gen = sessionGen_ + 1;
    crypto::Digest quote = mboot_.quote();

    // Bind our public key, the peer's key, the session generation, and
    // the measured-boot quote into the signed report: reportData =
    // monitor pub || SHA256(user pub || generation || quote). A relay
    // that tampers with any response field breaks this hash, and the
    // hash is covered by the chip-key signature.
    ReportData rd{};
    std::memcpy(rd.data(), kp.publicKey.data(), 32);
    crypto::Sha256 binding;
    binding.update(user_pub.data(), user_pub.size());
    uint8_t gen_le[8];
    storeLe<uint64_t>(gen_le, gen);
    binding.update(gen_le, sizeof(gen_le));
    binding.update(quote.data(), quote.size());
    crypto::Digest bind_hash = binding.finish();
    std::memcpy(rd.data() + 32, bind_hash.data(), 32);
    AttestationReport report = cpu.attest(rd);

    channelKeys_ = crypto::deriveSessionKeys(shared);
    sealChannel_ =
        std::make_unique<SecureChannel>(*channelKeys_, /*initiator=*/false);
    sessionGen_ = gen;
    sessionActive_ = true;

    ChannelResponse resp{};
    resp.report = report;
    resp.chain = machine_.psp().certChain();
    std::memcpy(resp.monitorPublic, kp.publicKey.data(), 32);
    std::memcpy(resp.bootQuote, quote.data(), 32);
    resp.sessionGeneration = gen;
    static_assert(sizeof(ChannelResponse) <= kIdcbRetPayloadMax);
    std::memcpy(msg.retPayload, &resp, sizeof(resp));
    msg.retPayloadLen = sizeof(resp);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
VeilMon::opChannelTeardown(Vcpu &cpu, IdcbMessage &msg)
{
    if (!sessionActive_ || sealChannel_ == nullptr) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    if (msg.payloadLen == 0 || msg.payloadLen > kIdcbPayloadMax) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    // Only the session owner can end the session: the proof must open
    // under the live channel keys and name the live generation. A
    // failed open leaves the channel state (including the replay
    // window) untouched, so a hostile OS cannot tear down or desync
    // the session by guessing.
    Bytes sealed(msg.payload, msg.payload + msg.payloadLen);
    auto plain = sealChannel_->open(sealed);
    if (!plain || plain->size() != sizeof(kTeardownMagic) + 8 ||
        std::memcmp(plain->data(), kTeardownMagic,
                    sizeof(kTeardownMagic)) != 0 ||
        loadLe<uint64_t>(plain->data() + sizeof(kTeardownMagic)) !=
            sessionGen_) {
        msg.status = static_cast<uint64_t>(VeilStatus::VerifyFailed);
        return;
    }
    sealChannel_.reset();
    channelKeys_.reset();
    sessionActive_ = false;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
VeilMon::opCreateEnclaveVmsa(Vcpu &cpu, IdcbMessage &msg)
{
    if (msg.requesterVmpl != 1) {
        // Only VeilS-ENC (Dom-SRV) may create enclave domains: a
        // malicious OS must not spawn VCPUs at privileged levels (§8.1).
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    ensure(enclaveEntryFactory_ != nullptr, "VeilMon: no enclave factory");
    uint32_t vcpu = static_cast<uint32_t>(msg.args[0]);
    uint64_t program_id = msg.args[1];
    Gpa cr3 = msg.args[2];
    Gpa ghcb = msg.args[3];
    Gva idt_handler = msg.args[4];
    uint64_t enclave_id = msg.args[5];
    if (vcpu >= layout_.numVcpus) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    Gpa page = allocVmsaPage();
    VmsaId id = cpu.createVmsa(page, vcpu, Vmpl::Vmpl2, /*irq_masked=*/false,
                               enclaveEntryFactory_(enclave_id, program_id));
    Vmsa &state = machine_.vmsaState(id);
    state.cpl = Cpl::User; // enclaves are unprivileged (§5.1 Dom-ENC)
    state.cr3 = cr3;
    state.ghcbGpa = ghcb;
    state.idtHandlerVa = idt_handler;
    hvRegisterVmsa(cpu, vcpu, Vmpl::Vmpl2, id, page);

    msg.ret[0] = id;
    msg.ret[1] = page;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
VeilMon::opDestroyEnclaveVmsa(Vcpu &cpu, IdcbMessage &msg)
{
    if (msg.requesterVmpl != 1) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    Gpa page = msg.args[1];
    if (!machine_.rmp().isVmsaPage(page)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    machine_.rmp().clearVmsa(Vmpl::Vmpl0, page);
    freeVmsaPages_.push_back(page);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

} // namespace veil::core
