/**
 * @file
 * VeilMon: the VMPL-0 security monitor (§5).
 *
 * Responsibilities, mapping 1:1 to the paper:
 *  - §5.1 Dom-MON bootstrap: PVALIDATE all guest memory, then RMPADJUST
 *    every page to carve the four privilege domains (protected regions
 *    stay VMPL-0/-1 only; the OS gets everything else).
 *  - §5.2 Replicated VCPUs: creates per-domain VMSA replicas from its
 *    VMSA page pool and registers them with the hypervisor.
 *  - §5.3 Privileged functionality delegation: VCPU boot and
 *    PVALIDATE / page-state changes on behalf of the Dom-UNT kernel,
 *    with sanitization of every OS-provided address (§8.1).
 *  - §5.1 Secure user channel: DH key exchange bound into the signed
 *    SEV attestation report.
 */
#ifndef VEIL_VEIL_MONITOR_HH_
#define VEIL_VEIL_MONITOR_HH_

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "hv/hypervisor.hh"
#include "veil/channel.hh"
#include "veil/layout.hh"
#include "veil/mboot.hh"
#include "veil/proto.hh"

namespace veil::core {

/** Boot-time cost breakdown (drives the §9.1 boot benchmark). */
struct MonitorBootStats
{
    uint64_t totalCycles = 0;
    uint64_t pvalidateCycles = 0;
    uint64_t rmpadjustCycles = 0;
    uint64_t vmsaSetupCycles = 0;
    uint64_t pagesProtected = 0;
    /// Grouped PageStateChange requests issued during lazy acceptance.
    uint64_t pscBatches = 0;
    /// 2 MiB regions protected via the PVALIDATE-2M fast path.
    uint64_t hugeRegions = 0;
};

/** Factory for the Dom-ENC VMSA entry of a given enclave. */
using EnclaveEntryFactory =
    std::function<snp::GuestEntry(uint64_t enclave_id, uint64_t program_id)>;

/** The VMPL-0 monitor. */
class VeilMon
{
  public:
    VeilMon(snp::Machine &machine, const CvmLayout &layout);

    // ---- Wiring (done by VeilVm before launch) ----

    /** Kernel entries: BSP boot and per-VCPU AP boot. */
    void setKernelEntries(snp::GuestEntry bsp,
                          std::function<snp::GuestEntry(uint32_t)> ap);

    /** Service dispatcher entry (per VCPU). */
    void setServiceEntry(std::function<snp::GuestEntry(uint32_t)> entry);

    /** Enclave runtime entry factory (provided by the SDK layer). */
    void setEnclaveEntryFactory(EnclaveEntryFactory factory);

    /**
     * Lazy-acceptance boot (DESIGN.md §14): the launch left the OS
     * region (at/above kernelBase) unassigned; the monitor accepts it
     * during protectDomains — grouped multi-entry PageStateChange
     * requests when huge pages are on, one round trip per page
     * otherwise (the ablation baseline).
     */
    void setLazyAccept(bool on) { lazyAccept_ = on; }

    /** Boot VMSA entry point (simulated RIP of the boot image). */
    void bootMain(snp::Vcpu &cpu);

    const MonitorBootStats &bootStats() const { return bootStats_; }

    /**
     * Remote-user handshake step (host side of the network): returns
     * the sealed-channel keys derived by the monitor once
     * EstablishChannel has been processed. Used by services.
     */
    const std::optional<crypto::SessionKeys> &channelKeys() const
    {
        return channelKeys_;
    }

    /**
     * The monitor-side (responder) endpoint of the secure user channel,
     * shared with the protected services; nullptr until the channel is
     * established.
     */
    SecureChannel *sealChannel() { return sealChannel_.get(); }

    /** Sanitization helper shared with services (§8.1): true if the
     *  OS-supplied page may be handed to the requested operation. */
    bool osPageAllowed(snp::Gpa page) const;

    /**
     * Session generation of the secure user channel: 0 before the
     * first EstablishChannel, then the 1-based generation of the
     * current (or, after teardown, most recent) session. A new
     * EstablishChannel is only accepted while no session is live —
     * the OS cannot clobber an established channel (§15).
     */
    uint64_t sessionGeneration() const { return sessionGen_; }

    /** True while a user session holds the channel. */
    bool sessionActive() const { return sessionActive_; }

    /** The vTPM-style measured-boot register bank (§15). */
    const MeasuredBoot &measuredBoot() const { return mboot_; }

    const CvmLayout &layout() const { return layout_; }

  private:
    void protectDomains(snp::Vcpu &cpu);
    void acceptLazyMemory(snp::Vcpu &cpu);
    bool regionEligible2m(snp::Gpa base) const;
    int grantClass(snp::Gpa page) const;
    void createVcpuDomains(snp::Vcpu &cpu, uint32_t vcpu, bool boot_vcpu);
    void monitorLoop(snp::Vcpu &cpu);
    void dispatch(snp::Vcpu &cpu, IdcbMessage &msg);

    // Request handlers
    void opPvalidate(snp::Vcpu &cpu, IdcbMessage &msg);
    void opPageStateChange(snp::Vcpu &cpu, IdcbMessage &msg);
    void opBootVcpu(snp::Vcpu &cpu, IdcbMessage &msg);
    void opEstablishChannel(snp::Vcpu &cpu, IdcbMessage &msg);
    void opChannelTeardown(snp::Vcpu &cpu, IdcbMessage &msg);
    void opCreateEnclaveVmsa(snp::Vcpu &cpu, IdcbMessage &msg);
    void opDestroyEnclaveVmsa(snp::Vcpu &cpu, IdcbMessage &msg);

    snp::Gpa allocVmsaPage();
    void hvRegisterVmsa(snp::Vcpu &cpu, uint32_t vcpu, snp::Vmpl vmpl,
                        snp::VmsaId id, snp::Gpa vmsa_gpa);

    snp::Machine &machine_;
    CvmLayout layout_;
    snp::GuestEntry kernelBsp_;
    std::function<snp::GuestEntry(uint32_t)> kernelAp_;
    std::function<snp::GuestEntry(uint32_t)> serviceEntry_;
    EnclaveEntryFactory enclaveEntryFactory_;

    snp::Gpa nextVmsaPage_ = 0;
    std::vector<snp::Gpa> freeVmsaPages_;
    std::set<uint32_t> bootedVcpus_;
    bool lazyAccept_ = false;
    MonitorBootStats bootStats_;
    std::optional<crypto::SessionKeys> channelKeys_;
    std::unique_ptr<SecureChannel> sealChannel_;
    uint64_t channelNonce_ = 0;
    uint64_t sessionGen_ = 0;
    bool sessionActive_ = false;
    MeasuredBoot mboot_;
};

/**
 * Serialized EstablishChannel response: the signed report, the
 * platform certificate chain (SNP extended-report style: the host
 * serves the certs alongside the report so the verifier needs no
 * side channel), the monitor's DH public, the measured-boot quote,
 * and the session generation. Everything except the raw report
 * signature is integrity-bound: reportData carries the monitor public
 * directly and a hash covering (user public || generation || quote).
 */
struct ChannelResponse
{
    snp::AttestationReport report;
    attest::CertChain chain;
    uint8_t monitorPublic[32];
    uint8_t bootQuote[32];
    uint64_t sessionGeneration;
};

/** Plaintext teardown proof sealed by the session owner. */
constexpr char kTeardownMagic[8] = {'V', 'E', 'I', 'L',
                                    'T', 'D', 'W', 'N'};

} // namespace veil::core

#endif // VEIL_VEIL_MONITOR_HH_
