/**
 * @file
 * Shared SPSC ring conventions (DESIGN.md §11). One single-producer /
 * single-consumer ring is a run of guest-physical pages placed in the
 * *less privileged* side's memory (§5.2): slot 0 holds the header,
 * fixed-size record slots follow, head/tail are monotonic indices taken
 * mod capacity, and a full ring makes the producer drop (and count) the
 * record rather than overwrite unconsumed slots.
 *
 * Two ring families use this layout:
 *   - the PR-4 group-commit audit ring (VeilOp::LogAppendBatch, §6.3)
 *   - the VeilOp submission/completion rings (exit-less batched service
 *     calls, §11)
 */
#ifndef VEIL_VEIL_RING_HH_
#define VEIL_VEIL_RING_HH_

#include <cstdint>

#include "snp/types.hh"

namespace veil::core {

/**
 * Shared ring header (slot 0). The producer owns head/producerDrops,
 * the consumer owns tail; both are monotonic so `head - tail` is the
 * queue depth and wrap-around needs no extra state.
 */
struct RingHeader
{
    uint64_t capacity = 0;      ///< record-slot count (excl. slot 0)
    uint64_t head = 0;          ///< producer: next index to fill
    uint64_t tail = 0;          ///< consumer: next index to drain
    uint64_t producerDrops = 0; ///< dropped ring-full (drop-don't-overwrite)
};

/** GPA of record slot @p idx (taken mod @p slots) after the header. */
inline snp::Gpa
ringSlot(snp::Gpa ring_base, size_t slot_bytes, uint64_t slots, uint64_t idx)
{
    return ring_base + slot_bytes * (1 + idx % slots);
}

/**
 * Consumer-side header sanity check: the producer lives in a less
 * privileged domain, so capacity and index relationships are validated
 * before any slot is touched (the `opAppendBatch` rule).
 */
inline bool
ringHeaderValid(const RingHeader &h, uint64_t capacity)
{
    return h.capacity == capacity && h.tail <= h.head &&
           h.head - h.tail <= capacity;
}

// ---- Group-commit audit ring geometry (§6.3) ----

constexpr size_t kAuditRingPages = 4;    ///< ring size per VCPU
constexpr size_t kAuditSlotBytes = 256;  ///< per slot, incl. 4-byte length
constexpr size_t kAuditSlotDataMax = kAuditSlotBytes - 4;
constexpr uint64_t kAuditRingSlots =
    kAuditRingPages * snp::kPageSize / kAuditSlotBytes - 1;

static_assert(sizeof(RingHeader) <= kAuditSlotBytes,
              "ring header must fit in slot 0");

// ---- VeilOp submission/completion ring geometry (§11) ----
//
// One submission + one completion ring per VCPU, in kernel-owned pages
// next to the audit ring. Submission slots carry a full service request
// (args + a bounded payload); oversized requests fall back to the sync
// IDCB path at the call site. Completion slots carry status + ret words
// keyed by the submission sequence number.

constexpr size_t kOpRingPages = 8;
constexpr size_t kOpSlotBytes = 512;
constexpr uint64_t kOpRingSlots =
    kOpRingPages * snp::kPageSize / kOpSlotBytes - 1;
constexpr size_t kOpPayloadMax = 432; ///< kOpSlotBytes minus slot header

/** One queued VeilOp request (submission-ring record slot). */
struct VeilOpSlot
{
    uint32_t op = 0;  ///< VeilOp
    uint32_t seq = 0; ///< producer-assigned, strictly increasing
    uint64_t args[8] = {};
    uint32_t payloadLen = 0;
    uint32_t pad = 0;
    uint8_t payload[kOpPayloadMax] = {};
};

static_assert(sizeof(VeilOpSlot) == kOpSlotBytes,
              "VeilOp submission slot must be exactly one record slot");

constexpr size_t kOpCplPages = 1;
constexpr size_t kOpCplSlotBytes = 64;
constexpr uint64_t kOpCplSlots =
    kOpCplPages * snp::kPageSize / kOpCplSlotBytes - 1;

/** One posted completion (completion-ring record slot). */
struct VeilOpCompletion
{
    uint32_t seq = 0; ///< matches the VeilOpSlot that produced it
    uint32_t op = 0;
    uint64_t status = 0; ///< VeilStatus
    uint64_t ret[4] = {};
    uint64_t pad[2] = {};
};

static_assert(sizeof(VeilOpCompletion) == kOpCplSlotBytes,
              "VeilOp completion slot must be exactly one record slot");

static_assert(sizeof(RingHeader) <= kOpCplSlotBytes,
              "ring header must fit in the smallest slot size");

} // namespace veil::core

#endif // VEIL_VEIL_RING_HH_
