/**
 * @file
 * VeilS-KCI: kernel code integrity (§6.1).
 *
 *  - W(+)X enforcement: on activation, kernel text pages lose their
 *    RMP write permission and kernel data pages lose supervisor-execute
 *    at Dom-UNT — even a kernel that flips its own PTE bits cannot
 *    inject supervisor code.
 *  - TOCTOU-safe module loading: the module image is copied into
 *    protected staging, its signature verified, symbols relocated
 *    against the protected symbol table, and the prepared text region
 *    write-protected via RMPADJUST before the kernel may execute it.
 */
#ifndef VEIL_VEIL_SERVICES_KCI_HH_
#define VEIL_VEIL_SERVICES_KCI_HH_

#include <map>
#include <string>

#include "veil/layout.hh"
#include "veil/module_format.hh"
#include "veil/proto.hh"

namespace veil::core {

/** Serialized symbol-table entry in the KciActivate payload. */
struct KciSymbolEntry
{
    char name[kVkoSymbolNameMax] = {};
    uint64_t addr = 0;
};

/** The kernel-code-integrity protected service. */
class KciService
{
  public:
    KciService(snp::Machine &machine, const CvmLayout &layout,
               Bytes module_key);

    /** Dispatch a KCI IDCB request (runs on the Dom-SRV VCPU). */
    void handle(snp::Vcpu &cpu, IdcbMessage &msg);

    bool active() const { return active_; }
    size_t loadedModules() const { return modules_.size(); }

  private:
    void opActivate(snp::Vcpu &cpu, IdcbMessage &msg);
    void opModuleLoad(snp::Vcpu &cpu, IdcbMessage &msg);
    void opModuleUnload(snp::Vcpu &cpu, IdcbMessage &msg);

    bool rangeInKernel(snp::Gpa lo, snp::Gpa hi) const;

    struct LoadedModule
    {
        snp::Gpa dest = 0;
        uint32_t textPages = 0;
        uint32_t totalPages = 0;
    };

    snp::Machine &machine_;
    CvmLayout layout_;
    Bytes moduleKey_;
    bool active_ = false;
    std::map<std::string, uint64_t> symbols_; ///< protected symbol table
    std::map<uint64_t, LoadedModule> modules_;
    uint64_t nextHandle_ = 1;
};

} // namespace veil::core

#endif // VEIL_VEIL_SERVICES_KCI_HH_
