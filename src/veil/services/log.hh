/**
 * @file
 * VeilS-LOG: system audit log protection (§6.3).
 *
 * A reserved append-only storage region inside Dom-SRV memory holds
 * audit records the kernel forwards *before* executing each critical
 * event (execute-ahead protection). The compromised kernel can stop
 * sending new records but can never modify or truncate stored ones.
 * The remote user retrieves and clears records through the sealed
 * VeilMon channel; retrieval requests arriving through the untrusted
 * network are authenticated and replay-protected.
 */
#ifndef VEIL_VEIL_SERVICES_LOG_HH_
#define VEIL_VEIL_SERVICES_LOG_HH_

#include "veil/monitor.hh"
#include "veil/proto.hh"

namespace veil::core {

/** Commands inside a sealed LogQuery request. */
enum class LogQueryCmd : uint8_t {
    Fetch = 0, ///< arg = max bytes to return
    Clear = 1, ///< arg = clear records up to this offset (post-retrieval)
    Stats = 2,
};

/** The audit-log protected service. */
class LogService
{
  public:
    LogService(snp::Machine &machine, const CvmLayout &layout,
               VeilMon &monitor);

    /** Dispatch a LOG IDCB request (runs on the Dom-SRV VCPU). */
    void handle(snp::Vcpu &cpu, IdcbMessage &msg);

    // Introspection for tests / benches.
    uint64_t recordCount() const { return records_; }
    uint64_t bytesUsed() const { return head_ - base_; }
    uint64_t droppedRecords() const { return drops_; }
    uint64_t batchFlushes() const { return batchFlushes_; }
    uint64_t batchedRecords() const { return batchedRecords_; }

    /** Host-side test helper: decode all stored records. */
    std::vector<std::string> snapshotRecords() const;

  private:
    void opAppend(snp::Vcpu &cpu, IdcbMessage &msg);
    void opAppendBatch(snp::Vcpu &cpu, IdcbMessage &msg);
    void opQuery(snp::Vcpu &cpu, IdcbMessage &msg);
    void opStats(snp::Vcpu &cpu, IdcbMessage &msg);

    snp::Machine &machine_;
    CvmLayout layout_;
    VeilMon &monitor_;
    snp::Gpa base_;     ///< storage base (== layout.logStore)
    snp::Gpa end_;      ///< storage limit
    snp::Gpa head_;     ///< next write offset
    snp::Gpa readPos_;  ///< retrieval cursor
    uint64_t records_ = 0;
    uint64_t drops_ = 0;
    uint64_t batchFlushes_ = 0;   ///< LogAppendBatch calls handled
    uint64_t batchedRecords_ = 0; ///< records ingested through batches
};

} // namespace veil::core

#endif // VEIL_VEIL_SERVICES_LOG_HH_
