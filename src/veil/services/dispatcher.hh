/**
 * @file
 * Dom-SRV service dispatcher: the VMPL-1 execution context that hosts
 * the three protected services (§5.1 Dom-SRV). One replica VCPU per
 * physical VCPU; each loops fetching requests from its OS<->SRV IDCB
 * and switching back to the requester.
 */
#ifndef VEIL_VEIL_SERVICES_DISPATCHER_HH_
#define VEIL_VEIL_SERVICES_DISPATCHER_HH_

#include "veil/services/enc.hh"
#include "veil/services/kci.hh"
#include "veil/services/log.hh"

namespace veil::core {

/** Hosts and dispatches the protected services at Dom-SRV. */
class ServiceDispatcher
{
  public:
    ServiceDispatcher(snp::Machine &machine, const CvmLayout &layout,
                      VeilMon &monitor, Bytes module_key);

    /** Dom-SRV VMSA entry for @p vcpu. */
    snp::GuestEntry entryFor(uint32_t vcpu);

    KciService &kci() { return kci_; }
    EncService &enc() { return enc_; }
    LogService &log() { return log_; }

    uint64_t requestsServed() const { return served_; }
    /** Ops consumed from the VeilOp submission rings (§11). */
    uint64_t ringOpsServed() const { return ringOps_; }

  private:
    /** One drainOpRing pass over a VCPU's submission ring. */
    struct DrainResult
    {
        uint64_t drained = 0;     ///< ops consumed this pass
        uint64_t completions = 0; ///< completions posted this pass
        bool ok = true;           ///< false: malformed ring header
    };

    void srvLoop(snp::Vcpu &cpu);
    void dispatch(snp::Vcpu &cpu, IdcbMessage &msg);
    DrainResult drainOpRing(snp::Vcpu &cpu);

    snp::Machine &machine_;
    CvmLayout layout_;
    KciService kci_;
    EncService enc_;
    LogService log_;
    uint64_t served_ = 0;
    uint64_t ringOps_ = 0;
};

} // namespace veil::core

#endif // VEIL_VEIL_SERVICES_DISPATCHER_HH_
