#include "veil/services/enc.hh"

#include <cstring>

#include "base/log.hh"
#include "crypto/drbg.hh"
#include "crypto/hmac.hh"
#include "veil/channel.hh"

namespace veil::core {

using namespace snp;

namespace {
/// Measurement / crypto cost charged per enclave page at initialization
/// (SHA-256 at ~10 cycles/byte).
constexpr uint64_t kMeasureCyclesPerPage = 10 * kPageSize;
/// AES-CTR + tag cost for evict/restore of one page.
constexpr uint64_t kCryptCyclesPerPage = 14 * kPageSize;
/// Snapshot sealing: per-page RMP demotion + PTE downgrade bookkeeping.
constexpr uint64_t kSnapshotCyclesPerPage = 120;
/// Clone instantiation: per-page read-only mapping into fresh tables.
constexpr uint64_t kCloneMapCyclesPerPage = 60;
/// CoW break: 4 KiB protected copy plus remap (≪ re-measuring).
constexpr uint64_t kCloneFaultCycles = kPageSize / 2;
} // namespace

EncService::EncService(Machine &machine, const CvmLayout &layout,
                       VeilMon &monitor)
    : machine_(machine),
      layout_(layout),
      monitor_(monitor),
      srvEditor_(
          machine.memory(), [this] { return allocSrvFrame(); },
          [this](Gpa p) { freeSrvFrame(p); },
          // Edits to the cloned enclave tables must invalidate the
          // enclave VCPU's cached translations (and any other VMSA
          // running on the clone cr3), same as the kernel's tables.
          [this](Gpa cr3, std::optional<Gva> va) {
              if (va)
                  machine_.tlbInvlpg(cr3, *va);
              else
                  machine_.tlbFlushCr3(cr3);
          }),
      nextSrvFrame_(layout.srvHeap)
{
}

Gpa
EncService::allocSrvFrame()
{
    if (!freeSrvFrames_.empty()) {
        Gpa p = freeSrvFrames_.back();
        freeSrvFrames_.pop_back();
        return p;
    }
    if (nextSrvFrame_ >= layout_.srvEnd)
        panic("EncService: Dom-SRV frame pool exhausted");
    Gpa p = nextSrvFrame_;
    nextSrvFrame_ += kPageSize;
    return p;
}

void
EncService::freeSrvFrame(Gpa p)
{
    freeSrvFrames_.push_back(p);
}

const EnclaveInfo *
EncService::info(uint64_t id) const
{
    auto it = enclaves_.find(id);
    return it == enclaves_.end() ? nullptr : &it->second;
}

size_t
EncService::liveEnclaves() const
{
    size_t n = 0;
    for (const auto &[id, e] : enclaves_)
        n += e.alive;
    return n;
}

const SnapshotInfo *
EncService::snapshot(uint64_t id) const
{
    auto it = snapshots_.find(id);
    return it == snapshots_.end() ? nullptr : &it->second;
}

size_t
EncService::liveSnapshots() const
{
    size_t n = 0;
    for (const auto &[id, s] : snapshots_)
        n += s.alive;
    return n;
}

void
EncService::lockMt(Vcpu &cpu)
{
    if (!machine_.multicore())
        return;
    while (!mtMu_.try_lock())
        cpu.burn(0); // safe-point while spinning (DESIGN.md §12)
}

void
EncService::unlockMt()
{
    if (machine_.multicore())
        mtMu_.unlock();
}

PermMask
EncService::vmpl2PermsFor(uint64_t pte) const
{
    PermMask m = PermRead;
    if (pte & PteWrite)
        m |= PermWrite;
    if (!(pte & PteNx))
        m |= PermUserExec;
    return m;
}

crypto::Digest
EncService::pageTag(const EnclaveInfo &e, Gva va, uint64_t ctr,
                    const uint8_t *plain) const
{
    crypto::HmacSha256 h(e.pagingMac);
    h.update(&va, sizeof(va));
    h.update(&ctr, sizeof(ctr));
    h.update(plain, kPageSize);
    return h.finish();
}

void
EncService::derivePagingKeys(EnclaveInfo &e)
{
    // Per-enclave paging keys from a DRBG bound to the enclave id.
    // Clones derive *fresh* keys: sharing the template's would let one
    // clone forge another's evicted-page tags.
    Bytes seed = machine_.config().pspKey;
    appendBytes(seed, "enc-paging", 10);
    appendLe<uint64_t>(seed, e.id);
    crypto::HmacDrbg drbg(seed);
    Bytes key = drbg.generate(16);
    crypto::AesKey ak;
    std::copy(key.begin(), key.end(), ak.begin());
    e.pagingAes.emplace(ak);
    e.pagingMac = crypto::HmacKey(drbg.generate(32));
}

bool
EncService::frameUsable(Gpa pa) const
{
    return isPageAligned(pa) && pa >= layout_.kernelBase &&
           pa < layout_.memEnd && !allEnclaveFrames_.count(pa) &&
           !machine_.rmp().isShared(pa) && !machine_.rmp().isVmsaPage(pa);
}

void
EncService::handle(Vcpu &cpu, IdcbMessage &msg)
{
    lockMt(cpu);
    switch (static_cast<VeilOp>(msg.op)) {
      case VeilOp::EncCreate:
        opCreate(cpu, msg);
        break;
      case VeilOp::EncDestroy:
        opDestroy(cpu, msg);
        break;
      case VeilOp::EncFreePage:
        opFreePage(cpu, msg);
        break;
      case VeilOp::EncRestorePage:
        opRestorePage(cpu, msg);
        break;
      case VeilOp::EncMprotect:
        opMprotect(cpu, msg);
        break;
      case VeilOp::EncSyncPerms:
        opSyncPerms(cpu, msg);
        break;
      case VeilOp::EncGetMeasurement:
        opGetMeasurement(cpu, msg);
        break;
      case VeilOp::EncSnapshot:
        opSnapshot(cpu, msg);
        break;
      case VeilOp::EncClone:
        opClone(cpu, msg);
        break;
      case VeilOp::EncCloneFault:
        opCloneFault(cpu, msg);
        break;
      case VeilOp::EncSnapshotRelease:
        opSnapshotRelease(cpu, msg);
        break;
      default:
        msg.status = static_cast<uint64_t>(VeilStatus::Unsupported);
        break;
    }
    unlockMt();
}

void
EncService::opCreate(Vcpu &cpu, IdcbMessage &msg)
{
    Gpa process_cr3 = msg.args[0];
    Gva lo = msg.args[1];
    Gva hi = msg.args[2];
    Gpa ghcb = msg.args[3];
    uint32_t vcpu = static_cast<uint32_t>(msg.args[4]);
    uint64_t program_id = msg.args[5];
    Gva idt_handler = msg.args[7];

    if (!isPageAligned(lo) || !isPageAligned(hi) || lo >= hi ||
        lo < kUserVaLo || hi > kUserVaHi || vcpu >= layout_.numVcpus ||
        !machine_.rmp().isShared(ghcb)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    // Scan the OS-built page tables for the whole user address space.
    std::vector<std::pair<Gva, uint64_t>> user_leaves;
    std::vector<std::pair<Gva, uint64_t>> enclave_leaves;
    srvEditor_.forEachLeaf(process_cr3, kUserVaLo, kUserVaHi,
                           [&](Gva va, uint64_t pte) {
                               if (!(pte & PteUser))
                                   return; // never clone kernel mappings
                               user_leaves.emplace_back(va, pte);
                               if (va >= lo && va < hi)
                                   enclave_leaves.emplace_back(va, pte);
                           });
    cpu.burn(200 * user_leaves.size()); // scan cost

    // §6.2 invariants: one-to-one mapping and disjoint physical pages.
    std::set<Gpa> seen;
    for (const auto &[va, pte] : enclave_leaves) {
        Gpa pa = pte & kPteAddrMask;
        bool fresh = seen.insert(pa).second;
        if (!fresh || !frameUsable(pa)) {
            msg.status = static_cast<uint64_t>(VeilStatus::VerifyFailed);
            return;
        }
    }
    if (enclave_leaves.empty()) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    EnclaveInfo e;
    e.id = nextId_++;
    e.processCr3 = process_cr3;
    e.lo = lo;
    e.hi = hi;
    e.vcpu = vcpu;
    e.ghcb = ghcb;
    e.programId = program_id;
    e.idtHandler = idt_handler;

    // Clone the user page tables into protected memory.
    e.cloneCr3 = srvEditor_.createRoot();
    for (const auto &[va, pte] : user_leaves) {
        PageFlags f;
        f.user = true;
        f.write = pte & PteWrite;
        f.exec = !(pte & PteNx);
        srvEditor_.map(e.cloneCr3, va, pte & kPteAddrMask, f);
    }

    derivePagingKeys(e);

    // Measure (contents + metadata), then revoke Dom-UNT access and
    // grant Dom-ENC access to the enclave pages.
    crypto::Sha256 meas;
    for (const auto &[va, pte] : enclave_leaves) {
        Gpa pa = pte & kPteAddrMask;
        uint64_t meta_flags = pte & (PteWrite | PteNx | PteUser);
        meas.update(&va, sizeof(va));
        meas.update(&meta_flags, sizeof(meta_flags));
        std::vector<uint8_t> page(kPageSize);
        cpu.readPhys(pa, page.data(), page.size());
        meas.update(page.data(), page.size());
        cpu.burn(kMeasureCyclesPerPage);

        cpu.rmpadjust(pa, Vmpl::Vmpl2, vmpl2PermsFor(pte));
        cpu.rmpadjust(pa, Vmpl::Vmpl3, kPermNone, /*warm=*/true);
        e.frames.insert(pa);
        allEnclaveFrames_.insert(pa);
    }
    e.measurement = meas.finish();

    // Grant the enclave access to the non-enclave (shared) user pages.
    for (const auto &[va, pte] : user_leaves) {
        if (va >= lo && va < hi)
            continue;
        Gpa pa = pte & kPteAddrMask;
        if (machine_.rmp().isShared(pa))
            continue; // GHCB page: accessible everywhere already
        cpu.rmpadjust(pa, Vmpl::Vmpl2, vmpl2PermsFor(pte), /*warm=*/true);
    }

    // Ask VeilMon to create the Dom-ENC VCPU replica (§5.2).
    IdcbMessage req;
    req.op = static_cast<uint32_t>(VeilOp::CreateEnclaveVmsa);
    req.args[0] = vcpu;
    req.args[1] = program_id;
    req.args[2] = e.cloneCr3;
    req.args[3] = ghcb;
    req.args[4] = idt_handler;
    req.args[5] = e.id;
    idcbCall(cpu, layout_.srvMonIdcb(cpu.vcpuId()), Vmpl::Vmpl0, req);
    if (req.status != static_cast<uint64_t>(VeilStatus::Ok)) {
        msg.status = req.status;
        return;
    }
    e.vmsa = static_cast<VmsaId>(req.ret[0]);
    e.vmsaPage = req.ret[1];

    uint64_t id = e.id;
    enclaves_[id] = std::move(e);
    msg.ret[0] = id;
    msg.ret[1] = enclaves_[id].vmsa;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opDestroy(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    if (it == enclaves_.end() || !it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    EnclaveInfo &e = it->second;

    // Scrub and return the enclave's frames to the OS.
    for (Gpa pa : e.frames) {
        cpu.zeroPhys(pa);
        cpu.rmpadjust(pa, Vmpl::Vmpl2, kPermNone, /*warm=*/true);
        cpu.rmpadjust(pa, Vmpl::Vmpl3, kPermRw, /*warm=*/true);
        allEnclaveFrames_.erase(pa);
    }
    e.frames.clear();
    srvEditor_.destroyRoot(e.cloneCr3);

    IdcbMessage req;
    req.op = static_cast<uint32_t>(VeilOp::DestroyEnclaveVmsa);
    req.args[0] = e.vcpu;
    req.args[1] = e.vmsaPage;
    idcbCall(cpu, layout_.srvMonIdcb(cpu.vcpuId()), Vmpl::Vmpl0, req);

    e.alive = false;
    if (e.snapshotOf)
        snapshotDecref(cpu, e.snapshotOf);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opFreePage(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    Gva va = msg.args[1];
    if (it == enclaves_.end() || !it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    EnclaveInfo &e = it->second;
    if (va < e.lo || va >= e.hi) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    auto leaf = srvEditor_.leaf(e.cloneCr3, va);
    if (!leaf) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    Gpa pa = *leaf & kPteAddrMask;
    if (snapFrames_.count(pa)) {
        // Snapshot-shared frame: encrypting it in place would corrupt
        // every other sharer. The OS may only evict private pages.
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }

    // Integrity tag with a freshness counter, then encrypt in place.
    std::vector<uint8_t> page(kPageSize);
    cpu.readPhys(pa, page.data(), page.size());
    uint64_t ctr = e.freshCounter++;
    EnclaveInfo::Evicted ev;
    ev.ctr = ctr;
    ev.pteFlags = *leaf & (PteWrite | PteNx | PteUser);
    ev.tag = pageTag(e, va, ctr, page.data());

    std::vector<uint8_t> enc(kPageSize);
    crypto::aesCtrXor(*e.pagingAes, ctr, 0, page.data(), enc.data(), kPageSize);
    cpu.writePhys(pa, enc.data(), enc.size());
    cpu.burn(kCryptCyclesPerPage);

    // Unmap from the protected tables; hand the frame to the OS.
    srvEditor_.unmap(e.cloneCr3, va);
    cpu.rmpadjust(pa, Vmpl::Vmpl2, kPermNone, /*warm=*/true);
    cpu.rmpadjust(pa, Vmpl::Vmpl3, kPermRw, /*warm=*/true);
    e.frames.erase(pa);
    allEnclaveFrames_.erase(pa);
    e.evicted[va] = ev;
    cpu.machine().tracer().instant(trace::Category::EnclavePageOut, va);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opRestorePage(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    Gva va = msg.args[1];
    Gpa frame = msg.args[2];
    if (it == enclaves_.end() || !it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    EnclaveInfo &e = it->second;
    auto ev_it = e.evicted.find(va);
    if (ev_it == e.evicted.end()) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    if (!frameUsable(frame)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    const EnclaveInfo::Evicted &ev = ev_it->second;

    // Copy into protected staging, decrypt, verify freshness tag (§6.2).
    std::vector<uint8_t> enc(kPageSize);
    cpu.readPhys(frame, enc.data(), enc.size());
    std::vector<uint8_t> plain(kPageSize);
    crypto::aesCtrXor(*e.pagingAes, ev.ctr, 0, enc.data(), plain.data(), kPageSize);
    cpu.burn(kCryptCyclesPerPage);
    crypto::Digest tag = pageTag(e, va, ev.ctr, plain.data());
    if (!ctEqual(tag.data(), ev.tag.data(), tag.size())) {
        msg.status = static_cast<uint64_t>(VeilStatus::VerifyFailed);
        return;
    }

    // Install the plaintext, revoke the OS, remap in the clone.
    cpu.writePhys(frame, plain.data(), plain.size());
    cpu.rmpadjust(frame, Vmpl::Vmpl2, vmpl2PermsFor(ev.pteFlags | PteUser));
    cpu.rmpadjust(frame, Vmpl::Vmpl3, kPermNone, /*warm=*/true);
    PageFlags f;
    f.user = true;
    f.write = ev.pteFlags & PteWrite;
    f.exec = !(ev.pteFlags & PteNx);
    srvEditor_.map(e.cloneCr3, va, frame, f);
    e.frames.insert(frame);
    allEnclaveFrames_.insert(frame);
    e.evicted.erase(ev_it);
    cpu.machine().tracer().instant(trace::Category::EnclavePageIn, va);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opMprotect(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    Gva va = msg.args[1];
    uint64_t len = msg.args[2];
    uint64_t prot = msg.args[3]; // bit0 write, bit1 exec
    if (it == enclaves_.end() || !it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    EnclaveInfo &e = it->second;
    if (!isPageAligned(va) || va < e.lo || va + len > e.hi) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    for (Gva p = va; p < va + len; p += kPageSize) {
        auto leaf = srvEditor_.leaf(e.cloneCr3, p);
        if (!leaf)
            continue;
        PageFlags f;
        f.user = true;
        f.write = prot & 1;
        f.exec = prot & 2;
        srvEditor_.protect(e.cloneCr3, p, f);
        PermMask m = PermRead;
        if (f.write)
            m |= PermWrite;
        if (f.exec)
            m |= PermUserExec;
        cpu.rmpadjust(*leaf & kPteAddrMask, Vmpl::Vmpl2, m, /*warm=*/true);
    }
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opSyncPerms(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    Gva va = msg.args[1];
    uint64_t len = msg.args[2];
    uint64_t prot = msg.args[3]; // bit0 write, bit1 exec, bit7 unmap
    if (it == enclaves_.end() || !it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    EnclaveInfo &e = it->second;
    // Only non-enclave user regions may be synchronized by the OS.
    bool overlaps = va < e.hi && va + len > e.lo;
    if (!isPageAligned(va) || overlaps || va < kUserVaLo ||
        va + len > kUserVaHi) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    for (Gva p = va; p < va + len; p += kPageSize) {
        if (prot & 0x80) {
            srvEditor_.unmap(e.cloneCr3, p);
            continue;
        }
        // Mirror the OS mapping (possibly new) into the clone.
        auto os_leaf = srvEditor_.leaf(e.processCr3, p);
        if (!os_leaf || !(*os_leaf & PteUser))
            continue;
        Gpa pa = *os_leaf & kPteAddrMask;
        if (allEnclaveFrames_.count(pa))
            continue; // never alias an enclave frame
        PageFlags f;
        f.user = true;
        f.write = prot & 1;
        f.exec = prot & 2;
        srvEditor_.map(e.cloneCr3, p, pa, f);
        PermMask m = PermRead;
        if (f.write)
            m |= PermWrite;
        if (f.exec)
            m |= PermUserExec;
        if (!machine_.rmp().isShared(pa))
            cpu.rmpadjust(pa, Vmpl::Vmpl2, m, /*warm=*/true);
    }
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opGetMeasurement(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    if (it == enclaves_.end()) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    const EnclaveInfo &e = it->second;

    // Raw digest first (local verification), then a sealed copy when
    // the VeilMon user channel is up (remote attestation path, §6.2).
    std::memcpy(msg.retPayload, e.measurement.data(), e.measurement.size());
    msg.retPayloadLen = static_cast<uint32_t>(e.measurement.size());
    if (SecureChannel *chan = monitor_.sealChannel()) {
        Bytes plain(e.measurement.begin(), e.measurement.end());
        appendLe<uint64_t>(plain, e.id);
        Bytes sealed = chan->seal(plain);
        ensure(msg.retPayloadLen + sealed.size() <= kIdcbRetPayloadMax,
               "EncService: sealed measurement too large");
        std::memcpy(msg.retPayload + msg.retPayloadLen, sealed.data(),
                    sealed.size());
        msg.retPayloadLen += static_cast<uint32_t>(sealed.size());
        msg.ret[0] = sealed.size();
    }
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opSnapshot(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    if (it == enclaves_.end() || !it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    EnclaveInfo &e = it->second;
    if (e.snapshotOf) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    if (!e.evicted.empty()) {
        // The template must be fully resident so the snapshot is a
        // complete image; the kernel restores before sealing.
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    SnapshotInfo s;
    s.id = nextSnapId_++;
    s.lo = e.lo;
    s.hi = e.hi;
    s.programId = e.programId;
    s.idtHandler = e.idtHandler;
    s.measurement = e.measurement;

    // Seal: ownership of every image frame moves from the enclave to
    // the snapshot, and the source itself becomes a CoW sharer — its
    // clone-table leaves lose PteWrite and the RMP drops Dom-ENC write
    // so a stray write faults instead of mutating the template.
    srvEditor_.forEachLeaf(e.cloneCr3, e.lo, e.hi,
                           [&](Gva va, uint64_t pte) {
                               SnapshotInfo::Page p;
                               p.frame = pte & kPteAddrMask;
                               p.pteFlags =
                                   pte & (PteWrite | PteNx | PteUser);
                               s.pages[va] = p;
                           });
    for (const auto &[va, p] : s.pages) {
        PageFlags f;
        f.user = true;
        f.write = false;
        f.exec = !(p.pteFlags & PteNx);
        srvEditor_.protect(e.cloneCr3, va, f);
        cpu.rmpadjust(p.frame, Vmpl::Vmpl2,
                      vmpl2PermsFor(p.pteFlags & ~uint64_t(PteWrite)),
                      /*warm=*/true);
        snapFrames_.insert(p.frame);
        cpu.burn(kSnapshotCyclesPerPage);
    }
    e.frames.clear();
    e.snapshotOf = s.id;
    s.refs = 2; // the sealed source + the kernel's snapshot handle

    uint64_t id = s.id;
    size_t pages = s.pages.size();
    snapshots_[id] = std::move(s);
    cpu.machine().tracer().instant(trace::Category::FleetSched, id);
    msg.ret[0] = id;
    msg.ret[1] = pages;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opClone(Vcpu &cpu, IdcbMessage &msg)
{
    auto snap_it = snapshots_.find(msg.args[0]);
    Gpa process_cr3 = msg.args[1];
    Gpa ghcb = msg.args[2];
    uint32_t vcpu = static_cast<uint32_t>(msg.args[3]);
    if (snap_it == snapshots_.end() || !snap_it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    if (vcpu >= layout_.numVcpus || !machine_.rmp().isShared(ghcb)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    SnapshotInfo &s = snap_it->second;

    EnclaveInfo e;
    e.id = nextId_++;
    e.processCr3 = process_cr3;
    e.lo = s.lo;
    e.hi = s.hi;
    e.vcpu = vcpu;
    e.ghcb = ghcb;
    e.programId = s.programId;
    e.idtHandler = s.idtHandler;
    e.snapshotOf = s.id;
    e.measurement = s.measurement; // attestation equals the template's
    derivePagingKeys(e);

    // Image pages map read-only onto the shared snapshot frames; the
    // original write bit is re-materialized per page by EncCloneFault.
    e.cloneCr3 = srvEditor_.createRoot();
    for (const auto &[va, p] : s.pages) {
        PageFlags f;
        f.user = true;
        f.write = false;
        f.exec = !(p.pteFlags & PteNx);
        srvEditor_.map(e.cloneCr3, va, p.frame, f);
        cpu.burn(kCloneMapCyclesPerPage);
    }

    // Mirror the clone process's own non-enclave user pages (ocall
    // block; the GHCB stays shared) exactly as opCreate does.
    std::vector<std::pair<Gva, uint64_t>> user_leaves;
    srvEditor_.forEachLeaf(process_cr3, kUserVaLo, kUserVaHi,
                           [&](Gva va, uint64_t pte) {
                               if (!(pte & PteUser))
                                   return;
                               if (va >= s.lo && va < s.hi)
                                   return;
                               user_leaves.emplace_back(va, pte);
                           });
    cpu.burn(100 * user_leaves.size());
    for (const auto &[va, pte] : user_leaves) {
        Gpa pa = pte & kPteAddrMask;
        if (allEnclaveFrames_.count(pa)) {
            // The OS tried to alias protected memory into the clone.
            srvEditor_.destroyRoot(e.cloneCr3);
            msg.status = static_cast<uint64_t>(VeilStatus::VerifyFailed);
            return;
        }
        PageFlags f;
        f.user = true;
        f.write = pte & PteWrite;
        f.exec = !(pte & PteNx);
        srvEditor_.map(e.cloneCr3, va, pa, f);
        if (!machine_.rmp().isShared(pa))
            cpu.rmpadjust(pa, Vmpl::Vmpl2, vmpl2PermsFor(pte),
                          /*warm=*/true);
    }

    // Fresh Dom-ENC VCPU replica from the template's program identity.
    IdcbMessage req;
    req.op = static_cast<uint32_t>(VeilOp::CreateEnclaveVmsa);
    req.args[0] = vcpu;
    req.args[1] = s.programId;
    req.args[2] = e.cloneCr3;
    req.args[3] = ghcb;
    req.args[4] = s.idtHandler;
    req.args[5] = e.id;
    idcbCall(cpu, layout_.srvMonIdcb(cpu.vcpuId()), Vmpl::Vmpl0, req);
    if (req.status != static_cast<uint64_t>(VeilStatus::Ok)) {
        srvEditor_.destroyRoot(e.cloneCr3);
        msg.status = req.status;
        return;
    }
    e.vmsa = static_cast<VmsaId>(req.ret[0]);
    e.vmsaPage = req.ret[1];

    ++s.refs;
    uint64_t id = e.id;
    enclaves_[id] = std::move(e);
    cpu.machine().tracer().instant(trace::Category::FleetSched, id);
    msg.ret[0] = id;
    msg.ret[1] = enclaves_[id].vmsa;
    msg.ret[2] = s.lo;
    msg.ret[3] = s.hi;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::opCloneFault(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = enclaves_.find(msg.args[0]);
    Gva va = msg.args[1];
    Gpa frame = msg.args[2];
    if (it == enclaves_.end() || !it->second.alive ||
        !it->second.snapshotOf) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    EnclaveInfo &e = it->second;
    auto snap_it = snapshots_.find(e.snapshotOf);
    ensure(snap_it != snapshots_.end(), "EncService: dangling snapshot");
    SnapshotInfo &s = snap_it->second;
    auto page_it = s.pages.find(va);
    if (page_it == s.pages.end()) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    const SnapshotInfo::Page &p = page_it->second;
    auto leaf = srvEditor_.leaf(e.cloneCr3, va);
    if (!leaf) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    if ((*leaf & kPteAddrMask) != p.frame) {
        // Already broken (idempotent retry after a dropped reply).
        msg.status = static_cast<uint64_t>(VeilStatus::Ok);
        return;
    }
    if (!(p.pteFlags & PteWrite)) {
        // Faulting on a page the image never allowed writes to is a
        // real protection violation, not CoW.
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    if (!frameUsable(frame)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    // Copy the shared contents into the private frame, then hand it to
    // the clone with the image's original permissions (write restored).
    std::vector<uint8_t> page(kPageSize);
    cpu.readPhys(p.frame, page.data(), page.size());
    cpu.writePhys(frame, page.data(), page.size());
    cpu.burn(kCloneFaultCycles);
    cpu.rmpadjust(frame, Vmpl::Vmpl2, vmpl2PermsFor(p.pteFlags | PteUser));
    cpu.rmpadjust(frame, Vmpl::Vmpl3, kPermNone, /*warm=*/true);
    PageFlags f;
    f.user = true;
    f.write = true;
    f.exec = !(p.pteFlags & PteNx);
    srvEditor_.map(e.cloneCr3, va, frame, f);
    e.frames.insert(frame);
    allEnclaveFrames_.insert(frame);
    cpu.machine().tracer().instant(trace::Category::FleetSched, va);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
EncService::snapshotDecref(Vcpu &cpu, uint64_t snap_id)
{
    auto it = snapshots_.find(snap_id);
    ensure(it != snapshots_.end() && it->second.refs > 0,
           "EncService: snapshot refcount underflow");
    SnapshotInfo &s = it->second;
    if (--s.refs > 0)
        return;
    // Last sharer gone: scrub the template frames and return them.
    for (const auto &[va, p] : s.pages) {
        cpu.zeroPhys(p.frame);
        cpu.rmpadjust(p.frame, Vmpl::Vmpl2, kPermNone, /*warm=*/true);
        cpu.rmpadjust(p.frame, Vmpl::Vmpl3, kPermRw, /*warm=*/true);
        allEnclaveFrames_.erase(p.frame);
        snapFrames_.erase(p.frame);
    }
    s.pages.clear();
    s.alive = false;
}

void
EncService::opSnapshotRelease(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = snapshots_.find(msg.args[0]);
    if (it == snapshots_.end() || !it->second.alive) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    snapshotDecref(cpu, msg.args[0]);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

} // namespace veil::core
