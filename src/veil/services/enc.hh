/**
 * @file
 * VeilS-ENC: shielded program execution (§6.2).
 *
 * Implements the paper's in-process enclave model on VMPL:
 *  - initialization: scans the process page tables, enforces the two
 *    §6.2 invariants (one-to-one virtual->physical mapping; physical
 *    pages disjoint across enclaves), clones the user page tables into
 *    protected Dom-SRV memory, revokes Dom-UNT access to enclave
 *    pages, and measures contents + metadata (SHA-256);
 *  - secure collaborative memory management: page eviction with
 *    AES-128-CTR encryption and a fresh integrity tag, fault-driven
 *    restore with tag verification, permission-change mediation, and
 *    synchronization of non-enclave mappings into the cloned tables;
 *  - measurement reporting over the VeilMon secure channel.
 */
#ifndef VEIL_VEIL_SERVICES_ENC_HH_
#define VEIL_VEIL_SERVICES_ENC_HH_

#include <map>
#include <optional>
#include <set>

#include "base/spinlock.hh"
#include "crypto/aes.hh"
#include "crypto/hmac.hh"
#include "snp/paging.hh"
#include "veil/monitor.hh"

namespace veil::core {

/** User virtual-address window of mini-kernel processes. */
constexpr snp::Gva kUserVaLo = 0x0000000000400000ULL;
constexpr snp::Gva kUserVaHi = 0x0000000010000000ULL;

/** Per-enclave protected metadata (conceptually in Dom-SRV memory). */
struct EnclaveInfo
{
    uint64_t id = 0;
    snp::Gpa processCr3 = 0;
    snp::Gpa cloneCr3 = 0;
    snp::Gva lo = 0, hi = 0; ///< enclave virtual range
    uint32_t vcpu = 0;
    snp::VmsaId vmsa = snp::kInvalidVmsa;
    snp::Gpa vmsaPage = 0;
    snp::Gpa ghcb = 0;
    uint64_t programId = 0;
    snp::Gva idtHandler = 0;
    /** Nonzero when this enclave shares frames with a snapshot (as the
     *  sealed source or as a CoW clone, §13). */
    uint64_t snapshotOf = 0;
    crypto::Digest measurement{};
    /**
     * Cached paging-key contexts, built once at enclave creation: the
     * expanded AES schedule and the HMAC ipad/opad midstates. Steady-state
     * page-out/page-in does no key expansion (DESIGN.md §7).
     */
    std::optional<crypto::Aes128> pagingAes;
    crypto::HmacKey pagingMac;
    uint64_t freshCounter = 1;

    struct Evicted
    {
        crypto::Digest tag{};
        uint64_t ctr = 0;
        uint64_t pteFlags = 0;
    };
    std::map<snp::Gva, Evicted> evicted;
    std::set<snp::Gpa> frames; ///< physical pages currently owned
    bool alive = true;
};

/**
 * A sealed copy-on-write enclave template (§13). The snapshot owns the
 * frames of the source enclave's image: every sharer (the sealed
 * source plus each clone) maps them read-only from its protected clone
 * tables; a write raises a #PF that the kernel resolves with
 * EncCloneFault into a per-clone private copy. Frames are scrubbed and
 * returned to Dom-UNT only when the last reference drops.
 */
struct SnapshotInfo
{
    uint64_t id = 0;
    snp::Gva lo = 0, hi = 0;
    uint64_t programId = 0;
    snp::Gva idtHandler = 0;
    crypto::Digest measurement{};

    struct Page
    {
        snp::Gpa frame = 0;
        uint64_t pteFlags = 0; ///< original PteWrite|PteNx|PteUser bits
    };
    std::map<snp::Gva, Page> pages;
    /** Sealed source + live clones + the kernel's snapshot handle. */
    uint64_t refs = 0;
    bool alive = true;
};

/** The shielded-execution protected service. */
class EncService
{
  public:
    EncService(snp::Machine &machine, const CvmLayout &layout,
               VeilMon &monitor);

    /** Dispatch an ENC IDCB request (runs on the Dom-SRV VCPU). */
    void handle(snp::Vcpu &cpu, IdcbMessage &msg);

    /** Introspection for tests. */
    const EnclaveInfo *info(uint64_t id) const;
    size_t liveEnclaves() const;
    const SnapshotInfo *snapshot(uint64_t id) const;
    size_t liveSnapshots() const;

  private:
    void opCreate(snp::Vcpu &cpu, IdcbMessage &msg);
    void opDestroy(snp::Vcpu &cpu, IdcbMessage &msg);
    void opFreePage(snp::Vcpu &cpu, IdcbMessage &msg);
    void opRestorePage(snp::Vcpu &cpu, IdcbMessage &msg);
    void opMprotect(snp::Vcpu &cpu, IdcbMessage &msg);
    void opSyncPerms(snp::Vcpu &cpu, IdcbMessage &msg);
    void opGetMeasurement(snp::Vcpu &cpu, IdcbMessage &msg);
    void opSnapshot(snp::Vcpu &cpu, IdcbMessage &msg);
    void opClone(snp::Vcpu &cpu, IdcbMessage &msg);
    void opCloneFault(snp::Vcpu &cpu, IdcbMessage &msg);
    void opSnapshotRelease(snp::Vcpu &cpu, IdcbMessage &msg);

    void derivePagingKeys(EnclaveInfo &e);
    void snapshotDecref(snp::Vcpu &cpu, uint64_t snap_id);

    snp::PermMask vmpl2PermsFor(uint64_t pte) const;
    crypto::Digest pageTag(const EnclaveInfo &e, snp::Gva va, uint64_t ctr,
                           const uint8_t *plain) const;
    bool frameUsable(snp::Gpa pa) const;

    snp::Gpa allocSrvFrame();
    void freeSrvFrame(snp::Gpa p);

    snp::Machine &machine_;
    CvmLayout layout_;
    VeilMon &monitor_;
    snp::PageTableEditor srvEditor_;
    snp::Gpa nextSrvFrame_;
    std::vector<snp::Gpa> freeSrvFrames_;

    std::map<uint64_t, EnclaveInfo> enclaves_;
    std::map<uint64_t, SnapshotInfo> snapshots_;
    std::set<snp::Gpa> allEnclaveFrames_;
    std::set<snp::Gpa> snapFrames_; ///< frames owned by live snapshots
    uint64_t nextId_ = 1;
    uint64_t nextSnapId_ = 1;

    /**
     * Multicore dispatch lock (§13): in MT fleet mode several Dom-SRV
     * VCPUs dispatch ENC ops concurrently from their own host threads.
     * Waiters spin with cpu.burn(0) so they keep hitting safe-points
     * and cannot starve an exclusive section the holder is waiting on.
     * No-op in single-threaded mode (default paths stay bit-identical).
     */
    void lockMt(snp::Vcpu &cpu);
    void unlockMt();
    base::Spinlock mtMu_;
};

} // namespace veil::core

#endif // VEIL_VEIL_SERVICES_ENC_HH_
