#include "veil/services/dispatcher.hh"

#include <cstddef>
#include <cstring>

namespace veil::core {

using namespace snp;

namespace {

/// Per-op dispatch overhead when serving from the submission ring:
/// slot unmarshal + completion marshal, far below an IDCB round trip.
constexpr uint64_t kRingOpCycles = 350;

} // namespace

ServiceDispatcher::ServiceDispatcher(Machine &machine, const CvmLayout &layout,
                                     VeilMon &monitor, Bytes module_key)
    : machine_(machine),
      layout_(layout),
      kci_(machine, layout, std::move(module_key)),
      enc_(machine, layout, monitor),
      log_(machine, layout, monitor)
{
}

GuestEntry
ServiceDispatcher::entryFor(uint32_t vcpu)
{
    return [this](Vcpu &cpu) { srvLoop(cpu); };
}

void
ServiceDispatcher::srvLoop(Vcpu &cpu)
{
    uint32_t vcpu = cpu.vcpuId();
    for (;;) {
        // Opportunistic drain before serving the IDCB: recovers queued
        // ops whose doorbell the hypervisor lost, and keeps submission
        // order ahead of any sync request that arrived after them. An
        // empty or uninitialized ring costs no simulated cycles here.
        drainOpRing(cpu);
        IdcbMessage m;
        if (idcbFetch(cpu, layout_.osSrvIdcb(vcpu), m)) {
            m.requesterVmpl = 3;
            dispatch(cpu, m);
            idcbReply(cpu, layout_.osSrvIdcb(vcpu), m);
            ++served_;
        }
        domainSwitch(cpu, Vmpl::Vmpl3);
    }
}

ServiceDispatcher::DrainResult
ServiceDispatcher::drainOpRing(Vcpu &cpu)
{
    uint32_t vcpu = cpu.vcpuId();
    Gpa sub = layout_.opSubRing(vcpu);
    Gpa cplr = layout_.opCplRing(vcpu);
    DrainResult res;

    // Peek host-side: polling the resident header line costs nothing in
    // the cycle model, so this opportunistic check cannot perturb runs
    // that never use the ring. Real work below uses charged accesses.
    RingHeader sh = machine_.memory().readObj<RingHeader>(sub);
    if (sh.capacity == 0)
        return res; // ring never initialized (batching off)
    if (!ringHeaderValid(sh, kOpRingSlots)) {
        res.ok = false;
        return res;
    }
    if (sh.tail == sh.head)
        return res;

    RingHeader ch;
    cpu.readPhys(cplr, &ch, sizeof(ch));
    if (!ringHeaderValid(ch, kOpCplSlots)) {
        res.ok = false;
        return res;
    }

    while (sh.tail < sh.head) {
        if (ch.head - ch.tail >= kOpCplSlots)
            break; // completion backpressure: the kernel harvests, re-rings

        VeilOpSlot slot;
        cpu.readPhys(ringSlot(sub, kOpSlotBytes, kOpRingSlots, sh.tail),
                     &slot, sizeof(slot));
        IdcbMessage m;
        m.op = slot.op;
        static_assert(sizeof(m.args) == sizeof(slot.args));
        std::memcpy(m.args, slot.args, sizeof(m.args));
        m.payloadLen = std::min<uint32_t>(slot.payloadLen, kOpPayloadMax);
        std::memcpy(m.payload, slot.payload, m.payloadLen);
        cpu.burn(kRingOpCycles);

        if (static_cast<VeilOp>(m.op) == VeilOp::PageStateChange) {
            // PSC belongs to VeilMon: forward over the SRV<->MON IDCB so
            // the monitor applies exactly the sanitization a direct OS
            // call gets (osPageAllowed is requester-independent).
            idcbCall(cpu, layout_.srvMonIdcb(vcpu), Vmpl::Vmpl0, m);
        } else {
            m.requesterVmpl = 3; // ring requests originate from the OS
            dispatch(cpu, m);
        }

        VeilOpCompletion cpl;
        cpl.seq = slot.seq;
        cpl.op = slot.op;
        cpl.status = m.status;
        static_assert(sizeof(cpl.ret) == sizeof(m.ret));
        std::memcpy(cpl.ret, m.ret, sizeof(cpl.ret));
        cpu.writePhys(ringSlot(cplr, kOpCplSlotBytes, kOpCplSlots, ch.head),
                      &cpl, sizeof(cpl));
        ++ch.head;
        cpu.writePhys(cplr + offsetof(RingHeader, head), &ch.head,
                      sizeof(ch.head));
        // Consume before fetching the next op: a chaos-duplicated
        // doorbell re-reads an already-advanced tail and drains nothing
        // (idempotent retry).
        ++sh.tail;
        cpu.writePhys(sub + offsetof(RingHeader, tail), &sh.tail,
                      sizeof(sh.tail));
        ++res.drained;
        ++res.completions;
        ++ringOps_;
    }
    return res;
}

void
ServiceDispatcher::dispatch(Vcpu &cpu, IdcbMessage &msg)
{
    switch (static_cast<VeilOp>(msg.op)) {
      case VeilOp::Ping:
        msg.status = static_cast<uint64_t>(VeilStatus::Ok);
        break;
      case VeilOp::KciActivate:
      case VeilOp::KciModuleLoad:
      case VeilOp::KciModuleUnload: {
          trace::SpanScope span(machine_.tracer(),
                                trace::Category::ServiceKci, msg.op);
          kci_.handle(cpu, msg);
          break;
      }
      case VeilOp::EncCreate:
      case VeilOp::EncDestroy:
      case VeilOp::EncFreePage:
      case VeilOp::EncRestorePage:
      case VeilOp::EncMprotect:
      case VeilOp::EncSyncPerms:
      case VeilOp::EncGetMeasurement:
      case VeilOp::EncSnapshot:
      case VeilOp::EncClone:
      case VeilOp::EncCloneFault:
      case VeilOp::EncSnapshotRelease: {
          trace::SpanScope span(machine_.tracer(),
                                trace::Category::ServiceEnc, msg.op);
          enc_.handle(cpu, msg);
          break;
      }
      case VeilOp::LogAppend:
      case VeilOp::LogAppendBatch:
      case VeilOp::LogQuery:
      case VeilOp::LogStats: {
          trace::SpanScope span(machine_.tracer(),
                                trace::Category::ServiceLog, msg.op);
          log_.handle(cpu, msg);
          break;
      }
      case VeilOp::OpRingDoorbell: {
          trace::SpanScope span(machine_.tracer(),
                                trace::Category::RingFlush, msg.op);
          DrainResult res = drainOpRing(cpu);
          msg.ret[0] = res.drained;
          msg.ret[1] = res.completions;
          msg.status = static_cast<uint64_t>(
              res.ok ? VeilStatus::Ok : VeilStatus::BadArgs);
          break;
      }
      default:
        msg.status = static_cast<uint64_t>(VeilStatus::Unsupported);
        break;
    }
}

} // namespace veil::core
