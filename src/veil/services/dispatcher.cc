#include "veil/services/dispatcher.hh"

namespace veil::core {

using namespace snp;

ServiceDispatcher::ServiceDispatcher(Machine &machine, const CvmLayout &layout,
                                     VeilMon &monitor, Bytes module_key)
    : machine_(machine),
      layout_(layout),
      kci_(machine, layout, std::move(module_key)),
      enc_(machine, layout, monitor),
      log_(machine, layout, monitor)
{
}

GuestEntry
ServiceDispatcher::entryFor(uint32_t vcpu)
{
    return [this](Vcpu &cpu) { srvLoop(cpu); };
}

void
ServiceDispatcher::srvLoop(Vcpu &cpu)
{
    uint32_t vcpu = cpu.vcpuId();
    for (;;) {
        IdcbMessage m;
        if (idcbFetch(cpu, layout_.osSrvIdcb(vcpu), m)) {
            m.requesterVmpl = 3;
            dispatch(cpu, m);
            idcbReply(cpu, layout_.osSrvIdcb(vcpu), m);
            ++served_;
        }
        domainSwitch(cpu, Vmpl::Vmpl3);
    }
}

void
ServiceDispatcher::dispatch(Vcpu &cpu, IdcbMessage &msg)
{
    switch (static_cast<VeilOp>(msg.op)) {
      case VeilOp::Ping:
        msg.status = static_cast<uint64_t>(VeilStatus::Ok);
        break;
      case VeilOp::KciActivate:
      case VeilOp::KciModuleLoad:
      case VeilOp::KciModuleUnload: {
          trace::SpanScope span(machine_.tracer(),
                                trace::Category::ServiceKci, msg.op);
          kci_.handle(cpu, msg);
          break;
      }
      case VeilOp::EncCreate:
      case VeilOp::EncDestroy:
      case VeilOp::EncFreePage:
      case VeilOp::EncRestorePage:
      case VeilOp::EncMprotect:
      case VeilOp::EncSyncPerms:
      case VeilOp::EncGetMeasurement: {
          trace::SpanScope span(machine_.tracer(),
                                trace::Category::ServiceEnc, msg.op);
          enc_.handle(cpu, msg);
          break;
      }
      case VeilOp::LogAppend:
      case VeilOp::LogAppendBatch:
      case VeilOp::LogQuery:
      case VeilOp::LogStats: {
          trace::SpanScope span(machine_.tracer(),
                                trace::Category::ServiceLog, msg.op);
          log_.handle(cpu, msg);
          break;
      }
      default:
        msg.status = static_cast<uint64_t>(VeilStatus::Unsupported);
        break;
    }
}

} // namespace veil::core
