#include "veil/services/kci.hh"

#include <cstring>

#include "base/log.hh"

namespace veil::core {

using namespace snp;

KciService::KciService(Machine &machine, const CvmLayout &layout,
                       Bytes module_key)
    : machine_(machine), layout_(layout), moduleKey_(std::move(module_key))
{
}

bool
KciService::rangeInKernel(Gpa lo, Gpa hi) const
{
    return isPageAligned(lo) && lo < hi && lo >= layout_.kernelBase &&
           hi <= layout_.memEnd;
}

void
KciService::handle(Vcpu &cpu, IdcbMessage &msg)
{
    switch (static_cast<VeilOp>(msg.op)) {
      case VeilOp::KciActivate:
        opActivate(cpu, msg);
        break;
      case VeilOp::KciModuleLoad:
        opModuleLoad(cpu, msg);
        break;
      case VeilOp::KciModuleUnload:
        opModuleUnload(cpu, msg);
        break;
      default:
        msg.status = static_cast<uint64_t>(VeilStatus::Unsupported);
        break;
    }
}

void
KciService::opActivate(Vcpu &cpu, IdcbMessage &msg)
{
    Gpa text_lo = msg.args[0], text_hi = msg.args[1];
    Gpa data_lo = msg.args[2], data_hi = msg.args[3];
    if (active_ || !rangeInKernel(text_lo, text_hi) ||
        !rangeInKernel(data_lo, data_hi)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    // Protected symbol table, provided once at (trusted) kernel boot.
    size_t n = msg.payloadLen / sizeof(KciSymbolEntry);
    for (size_t i = 0; i < n; ++i) {
        KciSymbolEntry e;
        std::memcpy(&e, msg.payload + i * sizeof(e), sizeof(e));
        e.name[kVkoSymbolNameMax - 1] = '\0';
        symbols_[e.name] = e.addr;
    }

    // W^X: text becomes read + supervisor-exec; data loses all exec.
    for (Gpa p = text_lo; p < text_hi; p += kPageSize)
        cpu.rmpadjust(p, Vmpl::Vmpl3, PermRead | PermSupervisorExec);
    for (Gpa p = data_lo; p < data_hi; p += kPageSize)
        cpu.rmpadjust(p, Vmpl::Vmpl3, kPermRw);

    active_ = true;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
KciService::opModuleLoad(Vcpu &cpu, IdcbMessage &msg)
{
    Gpa image_gpa = msg.args[0];
    size_t image_len = static_cast<size_t>(msg.args[1]);
    Gpa dest = msg.args[2];
    uint32_t dest_pages = static_cast<uint32_t>(msg.args[3]);

    if (!active_ || image_len == 0 || image_len > 256 * 1024 ||
        !rangeInKernel(pageAlignDown(image_gpa),
                       pageAlignUp(image_gpa + image_len)) ||
        !rangeInKernel(dest, dest + Gpa(dest_pages) * kPageSize)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    // TOCTOU defense: copy the image into protected staging *before*
    // verifying, then only ever use the staged copy (§6.1).
    Bytes staged(image_len);
    cpu.readPhys(image_gpa, staged.data(), staged.size());

    if (!vkoVerify(staged, moduleKey_)) {
        msg.status = static_cast<uint64_t>(VeilStatus::VerifyFailed);
        return;
    }
    auto mod = vkoParse(staged);
    if (!mod) {
        msg.status = static_cast<uint64_t>(VeilStatus::VerifyFailed);
        return;
    }
    if (mod->installedSize() > size_t(dest_pages) * kPageSize) {
        msg.status = static_cast<uint64_t>(VeilStatus::Overflow);
        return;
    }

    // Relocate against the protected symbol table.
    Bytes text = mod->text;
    for (const auto &r : mod->relocs) {
        auto it = symbols_.find(mod->symbols[r.symIndex]);
        if (it == symbols_.end()) {
            msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
            return;
        }
        uint64_t addr = it->second;
        std::memcpy(text.data() + r.offset, &addr, sizeof(addr));
    }

    // Install: text, then data right after (page-aligned boundary).
    uint32_t text_pages =
        static_cast<uint32_t>(pageAlignUp(text.size()) / kPageSize);
    cpu.writePhys(dest, text.data(), text.size());
    if (!mod->data.empty()) {
        cpu.writePhys(dest + Gpa(text_pages) * kPageSize, mod->data.data(),
                      mod->data.size());
    }

    // Write-protect the prepared text region at Dom-UNT.
    for (uint32_t i = 0; i < text_pages; ++i) {
        cpu.rmpadjust(dest + Gpa(i) * kPageSize, Vmpl::Vmpl3,
                      PermRead | PermSupervisorExec);
    }

    uint64_t handle = nextHandle_++;
    modules_[handle] = LoadedModule{dest, text_pages, dest_pages};
    msg.ret[0] = handle;
    msg.ret[1] = dest + mod->header.entryOffset; // entry GPA (== kernel VA)
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
KciService::opModuleUnload(Vcpu &cpu, IdcbMessage &msg)
{
    auto it = modules_.find(msg.args[0]);
    if (it == modules_.end()) {
        msg.status = static_cast<uint64_t>(VeilStatus::NotFound);
        return;
    }
    const LoadedModule &m = it->second;
    // Return the text pages to ordinary kernel data permissions.
    for (uint32_t i = 0; i < m.textPages; ++i)
        cpu.rmpadjust(m.dest + Gpa(i) * kPageSize, Vmpl::Vmpl3, kPermRw);
    modules_.erase(it);
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

} // namespace veil::core
