#include "veil/services/log.hh"

#include <cstring>

#include "base/log.hh"
#include "veil/channel.hh"

namespace veil::core {

using namespace snp;

LogService::LogService(Machine &machine, const CvmLayout &layout,
                       VeilMon &monitor)
    : machine_(machine),
      layout_(layout),
      monitor_(monitor),
      base_(layout.logStore),
      end_(layout.logStoreEnd),
      head_(layout.logStore),
      readPos_(layout.logStore)
{
}

void
LogService::handle(Vcpu &cpu, IdcbMessage &msg)
{
    switch (static_cast<VeilOp>(msg.op)) {
      case VeilOp::LogAppend:
        opAppend(cpu, msg);
        break;
      case VeilOp::LogAppendBatch:
        opAppendBatch(cpu, msg);
        break;
      case VeilOp::LogQuery:
        opQuery(cpu, msg);
        break;
      case VeilOp::LogStats:
        opStats(cpu, msg);
        break;
      default:
        msg.status = static_cast<uint64_t>(VeilStatus::Unsupported);
        break;
    }
}

void
LogService::opAppend(Vcpu &cpu, IdcbMessage &msg)
{
    uint32_t len = msg.payloadLen;
    if (len == 0 || len > kIdcbPayloadMax) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }
    if (head_ + 4 + len > end_) {
        // The reserved region must be sized so the user retrieves logs
        // before overflow (§6.3); drops are counted, never overwritten.
        ++drops_;
        msg.status = static_cast<uint64_t>(VeilStatus::Overflow);
        return;
    }
    cpu.writePhys(head_, &len, sizeof(len));
    cpu.writePhys(head_ + 4, msg.payload, len);
    head_ += 4 + len;
    ++records_;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
LogService::opAppendBatch(Vcpu &cpu, IdcbMessage &msg)
{
    // The requesting VCPU's ring location comes from the trusted layout;
    // the hint in args[0] only cross-checks that the kernel and service
    // agree on the map. Everything inside the ring is untrusted input.
    Gpa ring = layout_.logRing(cpu.vcpuId());
    if (msg.args[0] != ring) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    AuditRingHeader h;
    cpu.readPhys(ring, &h, sizeof(h));
    if (!ringHeaderValid(h, kAuditRingSlots)) {
        msg.status = static_cast<uint64_t>(VeilStatus::BadArgs);
        return;
    }

    uint64_t appended = 0;
    uint64_t dropped = 0;
    uint8_t buf[kAuditSlotBytes];
    for (uint64_t i = h.tail; i < h.head; ++i) {
        Gpa slot = auditRingSlot(ring, i);
        uint32_t len;
        cpu.readPhys(slot, &len, sizeof(len));
        if (len == 0 || len > kAuditSlotDataMax) {
            // Malformed slot from the untrusted producer: per-record
            // drop accounting, same as a malformed single append.
            ++drops_;
            ++dropped;
            continue;
        }
        if (head_ + 4 + len > end_) {
            ++drops_;
            ++dropped;
            continue;
        }
        cpu.readPhys(slot + sizeof(len), buf, len);
        cpu.writePhys(head_, &len, sizeof(len));
        cpu.writePhys(head_ + 4, buf, len);
        head_ += 4 + len;
        ++records_;
        ++appended;
    }

    // Consume the batch: advance the shared tail to the drained head.
    h.tail = h.head;
    cpu.writePhys(ring + offsetof(AuditRingHeader, tail), &h.tail,
                  sizeof(h.tail));

    ++batchFlushes_;
    batchedRecords_ += appended;
    msg.ret[0] = appended;
    msg.ret[1] = dropped;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
LogService::opQuery(Vcpu &cpu, IdcbMessage &msg)
{
    SecureChannel *chan = monitor_.sealChannel();
    if (!chan) {
        msg.status = static_cast<uint64_t>(VeilStatus::Denied);
        return;
    }
    Bytes sealed(msg.payload, msg.payload + msg.payloadLen);
    auto plain = chan->open(sealed);
    if (!plain || plain->size() != 9) {
        // Forged / tampered / replayed request from the untrusted relay.
        msg.status = static_cast<uint64_t>(VeilStatus::VerifyFailed);
        return;
    }
    auto cmd = static_cast<LogQueryCmd>((*plain)[0]);
    uint64_t arg = loadLe<uint64_t>(plain->data() + 1);

    Bytes response;
    switch (cmd) {
      case LogQueryCmd::Fetch: {
          // [records:8][startOffset:8][payload...], bounded by arg and
          // the sealed-response budget: sealing adds exactly
          // kSealOverheadBytes of framing, so the plaintext response
          // (header + records) may use everything else.
          constexpr uint64_t kFetchHeaderBytes = 16;
          static_assert(kFetchHeaderBytes + kSealOverheadBytes <
                            kIdcbRetPayloadMax,
                        "LogService: no room for records in a reply");
          uint64_t budget = std::min<uint64_t>(
              {arg, kIdcbRetPayloadMax - kSealOverheadBytes -
                        kFetchHeaderBytes,
               end_ - base_});
          appendLe<uint64_t>(response, records_);
          appendLe<uint64_t>(response, readPos_ - base_);
          Gpa pos = readPos_;
          while (pos + 4 <= head_) {
              uint32_t len;
              cpu.readPhys(pos, &len, sizeof(len));
              if (response.size() + 4 + len > budget + kFetchHeaderBytes)
                  break;
              // Read the record straight into the response — no staging
              // buffer. Host-side only; simulated read cycles are charged
              // by readPhys exactly as before.
              appendLe<uint32_t>(response, len);
              size_t off = response.size();
              response.resize(off + len);
              cpu.readPhys(pos + 4, response.data() + off, len);
              pos += 4 + len;
          }
          readPos_ = pos;
          break;
      }
      case LogQueryCmd::Clear: {
          // Only the authenticated user may discard records, and only
          // after retrieving everything (readPos_ caught up to head_).
          if (head_ == readPos_) {
              head_ = base_;
              readPos_ = base_;
          }
          appendLe<uint64_t>(response, records_);
          break;
      }
      case LogQueryCmd::Stats:
        appendLe<uint64_t>(response, records_);
        appendLe<uint64_t>(response, head_ - base_);
        appendLe<uint64_t>(response, drops_);
        break;
    }

    Bytes sealed_resp = chan->seal(response);
    ensure(sealed_resp.size() <= kIdcbRetPayloadMax,
           "LogService: response too large");
    std::memcpy(msg.retPayload, sealed_resp.data(), sealed_resp.size());
    msg.retPayloadLen = static_cast<uint32_t>(sealed_resp.size());
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

void
LogService::opStats(Vcpu &cpu, IdcbMessage &msg)
{
    msg.ret[0] = records_;
    msg.ret[1] = head_ - base_;
    msg.ret[2] = drops_;
    msg.status = static_cast<uint64_t>(VeilStatus::Ok);
}

std::vector<std::string>
LogService::snapshotRecords() const
{
    std::vector<std::string> out;
    const GuestMemory &mem = machine_.memory();
    Gpa pos = base_;
    while (pos + 4 <= head_) {
        uint32_t len = mem.readObj<uint32_t>(pos);
        std::string rec(len, '\0');
        mem.read(pos + 4, rec.data(), len);
        out.push_back(std::move(rec));
        pos += 4 + len;
    }
    return out;
}

} // namespace veil::core
