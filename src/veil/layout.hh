/**
 * @file
 * Guest-physical memory layout of a Veil CVM.
 *
 * Regions (low to high):
 *   page 0          reserved (never mapped; cr3==0 sentinel safety)
 *   image           VeilMon + protected services boot image (measured)
 *   mon region      DomMON working memory: VMSA pool, monitor state
 *   boot GHCB       pre-shared GHCB for the boot VCPU (VeilMon)
 *   srv region      DomSRV working memory: log store, enclave page-table
 *                   frames, staging buffers, SRV<->MON IDCBs
 *   OS GHCBs        one shared page per VCPU (OS <-> hypervisor)
 *   OS IDCBs        per-VCPU OS<->Mon and OS<->Srv IDCBs — allocated in
 *                   the *less privileged* side's memory (§5.2), i.e.
 *                   reserved kernel memory
 *   kernel region   everything else: kernel text/data/heap, page
 *                   tables, user memory
 */
#ifndef VEIL_VEIL_LAYOUT_HH_
#define VEIL_VEIL_LAYOUT_HH_

#include <vector>

#include "snp/types.hh"

namespace veil::core {

/** Computed region map for one CVM. */
struct CvmLayout
{
    snp::Gpa imageBase = 0;
    snp::Gpa imageEnd = 0;

    snp::Gpa monBase = 0;    ///< DomMON working region (incl. VMSA pool)
    snp::Gpa monEnd = 0;
    snp::Gpa vmsaPool = 0;   ///< first VMSA page inside the mon region
    snp::Gpa vmsaPoolEnd = 0;

    snp::Gpa monGhcbBase = 0; ///< per-VCPU DomMON GHCBs (pre-shared)
    snp::Gpa srvGhcbBase = 0; ///< per-VCPU DomSRV GHCBs (pre-shared)
    snp::Gpa bootGhcb = 0;    ///< == monGhcb(0)

    snp::Gpa srvBase = 0;    ///< DomSRV working region
    snp::Gpa srvEnd = 0;
    snp::Gpa logStore = 0;   ///< VeilS-LOG reserved storage (inside srv)
    snp::Gpa logStoreEnd = 0;
    snp::Gpa srvIdcbBase = 0;///< per-VCPU SRV<->MON IDCBs (inside srv)
    snp::Gpa srvHeap = 0;    ///< staging + enclave PT frames (inside srv)

    snp::Gpa osGhcbBase = 0; ///< per-VCPU OS GHCB pages (shared)
    snp::Gpa osMonIdcbBase = 0; ///< per-VCPU OS<->Mon IDCBs
    snp::Gpa osSrvIdcbBase = 0; ///< per-VCPU OS<->Srv IDCBs

    snp::Gpa kernelBase = 0; ///< start of DomUNT memory
    snp::Gpa memEnd = 0;

    snp::Gpa logRingBase = 0; ///< per-VCPU audit rings (top of memory,
                              ///< kernel-owned, §5.2 less-privileged rule)
    snp::Gpa logRingEnd = 0;  ///< == memEnd

    snp::Gpa opRingBase = 0; ///< per-VCPU VeilOp submission+completion
                             ///< rings (below the audit rings; §11)
    snp::Gpa opRingEnd = 0;  ///< == logRingBase

    uint32_t numVcpus = 0;

    snp::Gpa osGhcb(uint32_t vcpu) const;
    snp::Gpa monGhcb(uint32_t vcpu) const;
    snp::Gpa srvGhcb(uint32_t vcpu) const;
    snp::Gpa osMonIdcb(uint32_t vcpu) const;
    snp::Gpa osSrvIdcb(uint32_t vcpu) const;
    snp::Gpa srvMonIdcb(uint32_t vcpu) const;
    snp::Gpa logRing(uint32_t vcpu) const;
    snp::Gpa opSubRing(uint32_t vcpu) const; ///< VeilOp submission ring
    snp::Gpa opCplRing(uint32_t vcpu) const; ///< VeilOp completion ring

    /** All pages that must be hypervisor-shared at launch. */
    std::vector<snp::Gpa> launchSharedPages() const;

    bool inMonRegion(snp::Gpa p) const;
    bool inSrvRegion(snp::Gpa p) const;
    /** Any region the OS must never control (mon, srv, image). */
    bool inProtectedRegion(snp::Gpa p) const;

    /**
     * Compute the layout.
     * @param mem_bytes   guest-physical memory size
     * @param vcpus       number of VCPUs
     * @param image_bytes boot image size
     * @param log_bytes   VeilS-LOG reserved storage size
     */
    static CvmLayout compute(size_t mem_bytes, uint32_t vcpus,
                             size_t image_bytes, size_t log_bytes);
};

} // namespace veil::core

#endif // VEIL_VEIL_LAYOUT_HH_
