#include "veil/mboot.hh"

#include "base/log.hh"

namespace veil::core {

namespace {

crypto::Digest
extendOne(const crypto::Digest &prev, const crypto::Digest &digest)
{
    crypto::Sha256 h;
    h.update(prev.data(), prev.size());
    h.update(digest.data(), digest.size());
    return h.finish();
}

} // namespace

MeasuredBoot::MeasuredBoot() : pcrs_(kNumPcrs)
{
}

void
MeasuredBoot::extend(uint32_t pcr, const std::string &label,
                     const crypto::Digest &digest)
{
    ensure(pcr < kNumPcrs, "MeasuredBoot: PCR index out of range");
    pcrs_[pcr] = extendOne(pcrs_[pcr], digest);
    log_.push_back({pcr, label, digest});
}

void
MeasuredBoot::extendBytes(uint32_t pcr, const std::string &label,
                          const void *data, size_t len)
{
    extend(pcr, label, crypto::Sha256::hash(data, len));
}

const crypto::Digest &
MeasuredBoot::pcr(uint32_t index) const
{
    ensure(index < kNumPcrs, "MeasuredBoot: PCR index out of range");
    return pcrs_[index];
}

crypto::Digest
MeasuredBoot::quote() const
{
    crypto::Sha256 h;
    for (const crypto::Digest &p : pcrs_)
        h.update(p.data(), p.size());
    return h.finish();
}

bool
MeasuredBoot::replayMatches() const
{
    std::vector<crypto::Digest> replay(kNumPcrs);
    for (const Event &e : log_) {
        if (e.pcr >= kNumPcrs)
            return false;
        replay[e.pcr] = extendOne(replay[e.pcr], e.digest);
    }
    return replay == pcrs_;
}

} // namespace veil::core
