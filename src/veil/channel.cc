#include "veil/channel.hh"

#include "base/log.hh"
#include "crypto/hmac.hh"

namespace veil::core {

namespace {
constexpr size_t kHeader = kSealHeaderBytes;
constexpr size_t kMacLen = kSealMacBytes;
} // namespace

SecureChannel::SecureChannel(const crypto::SessionKeys &keys, bool initiator)
    : cipher_(keys.encKey),
      macKey_(keys.macKey.data(), keys.macKey.size()),
      // Initiator sends even nonces, responder odd: directions never
      // collide in the CTR keystream or the replay window.
      txNonce_(initiator ? 0 : 1),
      rxNonce_(initiator ? 1 : 0)
{
}

Bytes
SecureChannel::seal(const Bytes &plaintext)
{
    if (plaintext.size() > kSealPlaintextMax) {
        fatal(strfmt("SecureChannel::seal: payload of %zu bytes exceeds "
                     "the %zu-byte channel limit",
                     plaintext.size(), kSealPlaintextMax));
    }
    uint64_t nonce = txNonce_;
    txNonce_ += 2;

    Bytes out;
    appendLe<uint64_t>(out, nonce);
    appendLe<uint32_t>(out, static_cast<uint32_t>(plaintext.size()));
    size_t ct_off = out.size();
    out.resize(ct_off + plaintext.size());
    crypto::aesCtrXor(cipher_, nonce, 0, plaintext.data(), out.data() + ct_off,
                      plaintext.size());

    crypto::Digest mac = macKey_.mac(out);
    out.insert(out.end(), mac.begin(), mac.end());
    return out;
}

std::optional<Bytes>
SecureChannel::open(const Bytes &sealed)
{
    if (sealed.size() < kHeader + kMacLen)
        return std::nullopt;
    size_t body_len = sealed.size() - kMacLen;

    crypto::Digest mac = macKey_.mac(sealed.data(), body_len);
    if (!ctEqual(mac.data(), sealed.data() + body_len, kMacLen))
        return std::nullopt;

    uint64_t nonce = loadLe<uint64_t>(sealed.data());
    uint32_t len = loadLe<uint32_t>(sealed.data() + 8);
    if (len != body_len - kHeader || len > kSealPlaintextMax)
        return std::nullopt;
    // Peer nonces share our rx parity and must strictly increase.
    if ((nonce & 1) != (rxNonce_ & 1) || nonce < rxNonce_)
        return std::nullopt;
    rxNonce_ = nonce + 2;

    Bytes plain(len);
    crypto::aesCtrXor(cipher_, nonce, 0, sealed.data() + kHeader, plain.data(),
                      len);
    return plain;
}

} // namespace veil::core
